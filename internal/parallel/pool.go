package parallel

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Pool errors returned by Submit.
var (
	// ErrQueueFull reports that the bounded job queue is at capacity and
	// every worker is busy; the caller should shed load (HTTP 503).
	ErrQueueFull = errors.New("parallel: job queue full")
	// ErrPoolClosed reports a Submit after Close started draining.
	ErrPoolClosed = errors.New("parallel: pool closed")
)

// Pool is the long-running sibling of MapN: a fixed set of workers
// consuming a bounded job queue. MapN serves one-shot fan-outs whose
// lifetime is the call; Pool serves open-ended request traffic (the
// loasd synthesis daemon) where jobs arrive continuously, excess load
// must be rejected rather than buffered without bound, and shutdown
// must drain whatever is queued or running.
//
// The MapN guarantees carry over where they make sense: at most
// `workers` jobs run at once, a panicking job is contained and surfaced
// as a *PanicError to its submitter, and Close returns only after every
// accepted job has finished.
type Pool struct {
	jobs     chan poolJob
	wg       sync.WaitGroup
	workers  int
	queueCap int
	limit    int64 // workers + queueCap: max jobs accepted at once

	mu     sync.Mutex
	closed bool

	depth    atomic.Int64 // jobs accepted and not yet finished
	maxDepth atomic.Int64 // high-water mark of depth over the pool's life
	executed atomic.Int64
	rejected atomic.Int64
}

type poolJob struct {
	ctx  context.Context
	fn   func(context.Context) error
	done chan error
}

// NewPool starts `workers` goroutines (<= 0 means GOMAXPROCS) over a
// queue that admits up to `queueDepth` jobs beyond the `workers` that
// can execute at once (queueDepth = 0: a job is accepted only if a
// worker slot is free).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{
		// Admission control is the depth counter, not channel capacity;
		// the buffer is sized so an admitted send can never block.
		jobs:     make(chan poolJob, workers+queueDepth),
		workers:  workers,
		queueCap: queueDepth,
		limit:    int64(workers + queueDepth),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		var err error
		if job.ctx.Err() != nil {
			// The submitter gave up while the job was queued; skip the
			// work entirely.
			err = job.ctx.Err()
		} else {
			// Adopt the submitter's pprof labels (phase, topology, run_id)
			// for the job's duration: profile samples taken while the job
			// runs attribute to the request that submitted it, not to an
			// anonymous pool worker. Goroutine labels do not cross the
			// Submit boundary on their own.
			pprof.SetGoroutineLabels(job.ctx)
			err = runProtected(job)
			pprof.SetGoroutineLabels(context.Background())
		}
		p.depth.Add(-1)
		p.executed.Add(1)
		job.done <- err
	}
}

func runProtected(job poolJob) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: -1, Value: v, Stack: debug.Stack()}
		}
	}()
	return job.fn(job.ctx)
}

// Submit enqueues fn and waits for it to finish, returning fn's error
// (panics become *PanicError). If the queue is full it returns
// ErrQueueFull immediately; after Close it returns ErrPoolClosed. If
// ctx expires first, Submit returns ctx.Err() while the job — if it
// already started — runs to completion in the background (fn sees the
// same ctx and may honour the cancellation itself).
func (p *Pool) Submit(ctx context.Context, fn func(context.Context) error) error {
	job := poolJob{ctx: ctx, fn: fn, done: make(chan error, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	d := p.depth.Add(1)
	if d > p.limit {
		p.depth.Add(-1)
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrQueueFull
	}
	// Track the saturation high-water mark (an observability number: how
	// close the pool has come to shedding load).
	for {
		m := p.maxDepth.Load()
		if d <= m || p.maxDepth.CompareAndSwap(m, d) {
			break
		}
	}
	p.jobs <- job // never blocks: admission keeps depth within the buffer
	p.mu.Unlock()
	select {
	case err := <-job.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting jobs, drains everything already accepted
// (queued jobs still run), and returns when the last worker exits.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// PoolStats is a point-in-time snapshot of the pool counters.
type PoolStats struct {
	Workers  int   `json:"workers"`
	Capacity int   `json:"capacity"`  // queue slots beyond the workers
	Depth    int64 `json:"depth"`     // accepted jobs not yet finished
	MaxDepth int64 `json:"max_depth"` // high-water mark of Depth
	Executed int64 `json:"executed"`
	Rejected int64 `json:"rejected"`
}

// Stats reports the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:  p.workers,
		Capacity: p.queueCap,
		Depth:    p.depth.Load(),
		MaxDepth: p.maxDepth.Load(),
		Executed: p.executed.Load(),
		Rejected: p.rejected.Load(),
	}
}
