package repro

import (
	"fmt"

	"loas/internal/core"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Golden-file encoding of the closed-loop refinement flow. One entry
// per topology pins, to the ulp: the refined design point the loop
// accepted, the accepted round's extracted performance at every process
// corner, and the outer-loop trajectory (round count, accepted round,
// per-round effective targets). The refinement loop is bit-deterministic
// by construction — fixed corner order, worker-invariant inner engine —
// which is what makes this golden viable; any drift in the corner
// models, the margin arithmetic, or the tightening schedule diffs here
// before it can silently move the refined designs.

// GoldenRefineRound pins one outer-loop round's effective targets and
// worst-corner acceptance margin.
type GoldenRefineRound struct {
	Round       int    `json:"round"`
	TargetGBW   string `json:"target_gbw_hz"`
	TargetPM    string `json:"target_pm_deg"`
	LayoutCalls int    `json:"layout_calls"`
	WorstMargin string `json:"worst_margin"`
	Met         bool   `json:"met"`
}

// GoldenRefineEntry is one topology's refined synthesis, bit-exact.
type GoldenRefineEntry struct {
	Topology  string              `json:"topology"`
	Case      int                 `json:"case"`
	Rounds    []GoldenRefineRound `json:"rounds"`
	BestRound int                 `json:"best_round"`
	Met       bool                `json:"met"`
	// Itail/Lc/Devices are the accepted round's design point.
	Itail   string                  `json:"itail_a"`
	Lc      string                  `json:"lc_m"`
	Devices map[string]GoldenDevice `json:"devices"`
	// Corners holds the accepted round's extracted performance at each
	// of the five process corners.
	Corners map[string]GoldenPerf `json:"corners"`
}

// GoldenRefineReport is the committed testdata/refine_golden.json
// schema.
type GoldenRefineReport struct {
	Tech    string              `json:"tech"`
	Entries []GoldenRefineEntry `json:"entries"`
}

// RefineGolden runs the closed-loop refined synthesis for one
// registered topology under its default specification at the given
// parasitic-awareness case and projects the outcome onto the golden
// schema.
func RefineGolden(tech *techno.Tech, topology string, caseN int) (*GoldenRefineEntry, error) {
	plan, err := sizing.Lookup(topology)
	if err != nil {
		return nil, err
	}
	res, err := core.SynthesizeRefined(tech, plan.DefaultSpec(), core.Options{
		Topology: plan.Name,
		Case:     caseN,
	})
	if err != nil {
		return nil, err
	}
	rep := res.Refine
	op := res.Design.OperatingPoint()
	e := &GoldenRefineEntry{
		Topology:  plan.Name,
		Case:      caseN,
		BestRound: rep.BestRound,
		Met:       rep.Met,
		Itail:     hexF(op.Itail),
		Lc:        hexF(op.Lc),
		Devices:   map[string]GoldenDevice{},
		Corners:   map[string]GoldenPerf{},
	}
	for _, rr := range rep.Rounds {
		e.Rounds = append(e.Rounds, GoldenRefineRound{
			Round:       rr.Round,
			TargetGBW:   hexF(rr.TargetGBW),
			TargetPM:    hexF(rr.TargetPM),
			LayoutCalls: rr.LayoutCalls,
			WorstMargin: hexF(rr.WorstMargin),
			Met:         rr.Met,
		})
	}
	for name, d := range res.Design.DeviceTable() {
		e.Devices[name] = GoldenDevice{W: hexF(d.W), L: hexF(d.L)}
	}
	for _, c := range rep.Rounds[rep.BestRound-1].Corners {
		e.Corners[c.Corner] = goldenPerf(c.Perf)
	}
	return e, nil
}

// DiffRefineGolden compares a live refined entry against the committed
// one, returning one line per mismatch (empty = bit-identical).
func DiffRefineGolden(want, got *GoldenRefineEntry) []string {
	var bad []string
	add := func(format string, args ...interface{}) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	pfx := want.Topology
	if want.Topology != got.Topology {
		add("topology: want %s, got %s", want.Topology, got.Topology)
	}
	if want.Case != got.Case {
		add("%s.case: want %d, got %d", pfx, want.Case, got.Case)
	}
	if want.BestRound != got.BestRound {
		add("%s.best_round: want %d, got %d", pfx, want.BestRound, got.BestRound)
	}
	if want.Met != got.Met {
		add("%s.met: want %v, got %v", pfx, want.Met, got.Met)
	}
	if len(want.Rounds) != len(got.Rounds) {
		add("%s: round count: want %d, got %d", pfx, len(want.Rounds), len(got.Rounds))
	} else {
		for i := range want.Rounds {
			w, g := want.Rounds[i], got.Rounds[i]
			if w != g {
				add("%s.rounds[%d]: want %+v, got %+v", pfx, i, w, g)
			}
		}
	}
	for name, field := range map[string][2]string{
		"itail_a": {want.Itail, got.Itail},
		"lc_m":    {want.Lc, got.Lc},
	} {
		if field[0] != field[1] {
			add("%s.%s: want %s, got %s", pfx, name, field[0], field[1])
		}
	}
	for _, name := range sortedDevKeys(want.Devices) {
		if want.Devices[name] != got.Devices[name] {
			add("%s.devices.%s: want %+v, got %+v", pfx, name, want.Devices[name], got.Devices[name])
		}
	}
	if len(got.Devices) != len(want.Devices) {
		add("%s: device count: want %d, got %d", pfx, len(want.Devices), len(got.Devices))
	}
	for corner, w := range want.Corners {
		g, ok := got.Corners[corner]
		if !ok {
			add("%s.corners.%s: missing", pfx, corner)
			continue
		}
		diffPerf(&bad, pfx+".corners."+corner, w, g)
	}
	if len(got.Corners) != len(want.Corners) {
		add("%s: corner count: want %d, got %d", pfx, len(want.Corners), len(got.Corners))
	}
	return bad
}
