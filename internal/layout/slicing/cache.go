// Shape-function caching across repeated floorplan optimizations. The
// sizing↔layout loop re-optimizes the same slicing tree several times per
// synthesis, and between consecutive calls most modules keep their exact
// shape alternatives (only the devices the sizing pass actually resized
// change). A ShapeCache keys every subtree by a canonical signature of
// its structure and option lists, so an unchanged subtree reuses the
// Pareto shape function — including the realize closures, which are pure
// functions of the captured leaf names and option geometry — computed in
// an earlier call. Signatures are exact (integer geometry, no rounding),
// so the cached path realizes bit-identical floorplans.
package slicing

import (
	"strconv"
	"strings"
	"sync"
)

// ShapeCache caches combined shape functions per canonical subtree
// signature. Safe for concurrent use; a nil *ShapeCache disables caching.
type ShapeCache struct {
	mu      sync.Mutex
	entries map[string]ShapeFn
	hits    int64
	misses  int64
}

// NewShapeCache returns an empty cache.
func NewShapeCache() *ShapeCache {
	return &ShapeCache{entries: map[string]ShapeFn{}}
}

// Stats reports lifetime subtree hit/miss counts and the entry count.
func (sc *ShapeCache) Stats() (hits, misses int64, size int) {
	if sc == nil {
		return 0, 0, 0
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.hits, sc.misses, len(sc.entries)
}

// Signature returns the canonical signature of a subtree, or ok=false
// when the tree contains node types the cache cannot canonicalize (custom
// Node implementations) — those compute uncached.
func Signature(n Node) (sig string, ok bool) {
	var b strings.Builder
	if !writeSig(&b, n) {
		return "", false
	}
	return b.String(), true
}

func writeSig(b *strings.Builder, n Node) bool {
	switch t := n.(type) {
	case *Leaf:
		b.WriteString("L")
		b.WriteString(strconv.Itoa(len(t.Name)))
		b.WriteByte(':')
		b.WriteString(t.Name)
		for _, o := range t.Options {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(o.Choice))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(o.W, 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatInt(o.H, 10))
		}
		return true
	case *Cut:
		if t.Vertical {
			b.WriteString("CV")
		} else {
			b.WriteString("CH")
		}
		b.WriteString(strconv.FormatInt(t.Gap, 10))
		for _, ch := range t.Children {
			b.WriteByte('(')
			if !writeSig(b, ch) {
				return false
			}
			b.WriteByte(')')
		}
		return true
	}
	return false
}

// shapes computes (or recalls) the shape function of a subtree, caching
// at every canonicalizable level so a changed leaf invalidates only the
// cuts on its root path.
func (sc *ShapeCache) shapes(n Node) ShapeFn {
	sig, ok := Signature(n)
	if !ok {
		return n.Shapes()
	}
	sc.mu.Lock()
	sf, hit := sc.entries[sig]
	if hit {
		sc.hits++
	} else {
		sc.misses++
	}
	sc.mu.Unlock()
	if hit {
		return sf
	}
	switch t := n.(type) {
	case *Leaf:
		sf = t.Shapes()
	case *Cut:
		if len(t.Children) > 0 {
			acc := sc.shapes(t.Children[0])
			for _, ch := range t.Children[1:] {
				acc = combine(acc, sc.shapes(ch), t.Vertical, t.Gap)
			}
			sf = acc
		}
	}
	sc.mu.Lock()
	sc.entries[sig] = sf
	sc.mu.Unlock()
	return sf
}

// OptimizeCached is Optimize with subtree shape functions served from
// the cache. A nil cache is exactly Optimize; the realized floorplan is
// bit-identical either way because cache keys are exact.
func OptimizeCached(root Node, c Constraint, sc *ShapeCache) (*Floorplan, error) {
	if sc == nil {
		return Optimize(root, c)
	}
	return realizeBest(sc.shapes(root), c)
}
