package sim

import (
	"fmt"

	"loas/internal/circuit"
)

// DCSweep steps the DC value of a named voltage source through the given
// values, warm-starting each solve from the previous solution — the
// standard way to trace transfer characteristics through high-gain
// transitions. The source's original value is restored afterwards.
func (e *Engine) DCSweep(srcName string, values []float64, opts OPOptions) ([]*OPResult, error) {
	opts.defaults()
	var src *circuit.VSource
	for _, v := range e.Ckt.VSources() {
		if v.Name == srcName {
			src = v
		}
	}
	if src == nil {
		return nil, fmt.Errorf("sim: sweep source %q not found", srcName)
	}
	orig := src.DC
	defer func() { src.DC = orig }()

	out := make([]*OPResult, 0, len(values))
	var x []float64
	for i, val := range values {
		src.DC = val
		if i == 0 {
			// Cold start through the full continuation.
			r, err := e.OP(opts)
			if err != nil {
				return nil, fmt.Errorf("sim: sweep point %d (%.4g V): %w", i, val, err)
			}
			out = append(out, r)
			x = e.packSolution(r)
			continue
		}
		// Warm start: a plain Newton from the previous point; fall back
		// to the full continuation if the step was too large.
		it, err := e.newtonSolve(x, opts.GminEnd, 1.0, &opts)
		if err != nil {
			r, err2 := e.OP(opts)
			if err2 != nil {
				return nil, fmt.Errorf("sim: sweep point %d (%.4g V): %w", i, val, err)
			}
			out = append(out, r)
			x = e.packSolution(r)
			continue
		}
		_ = it
		e.polish(x, &opts, &it)
		out = append(out, e.finishOP(x, it))
	}
	return out, nil
}

// packSolution flattens an OPResult back into an unknown vector.
func (e *Engine) packSolution(r *OPResult) []float64 {
	x := make([]float64, e.size)
	for i := 1; i < e.Ckt.NumNodes(); i++ {
		x[e.nodeUnknown(i)] = r.V[i]
	}
	for name, idx := range e.branch {
		x[idx] = r.BranchI[name]
	}
	return x
}
