package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOut drives one subcommand's handler in-process and returns its
// output, failing the test on a non-nil (non-zero exit) result.
func runOut(t *testing.T, cmd string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(cmd, args, &buf); err != nil {
		t.Fatalf("loas %s %v: %v", cmd, args, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("loas %s %v: empty output", cmd, args)
	}
	return buf.String()
}

func TestSmokeFig2(t *testing.T) {
	out := runOut(t, "fig2")
	if !strings.Contains(out, "F") {
		t.Fatalf("fig2 output unexpected: %q", out)
	}
}

func TestSmokeFig3(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "mirror.svg")
	out := runOut(t, "fig3", "-svg", svg)
	if !strings.Contains(out, "wrote "+svg) {
		t.Fatal("fig3 did not report the SVG file")
	}
	data, err := os.ReadFile(svg)
	if err != nil || !bytes.HasPrefix(data, []byte("<svg")) {
		t.Fatalf("fig3 svg: %v, %d bytes", err, len(data))
	}
}

func TestSmokeTable1SingleCase(t *testing.T) {
	out := runOut(t, "table1", "-case", "1")
	if !strings.Contains(out, "Case 1") || !strings.Contains(out, "GBW") {
		t.Fatalf("table1 output unexpected:\n%s", out)
	}
}

func TestSmokeTable1JSON(t *testing.T) {
	out := runOut(t, "table1", "-case", "1", "-json")
	var rep struct {
		Rows []struct {
			Case int `json:"case"`
		} `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Case != 1 {
		t.Fatalf("rows = %+v", rep.Rows)
	}
}

func TestSmokeMCJSON(t *testing.T) {
	out := runOut(t, "mc", "-n", "2", "-json")
	var rep struct {
		Stats struct {
			N        int `json:"n"`
			Failures int `json:"failures"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v", err)
	}
	if rep.Stats.N+rep.Stats.Failures != 2 {
		t.Fatalf("mc samples: %+v", rep.Stats)
	}
}

func TestSmokeMCText(t *testing.T) {
	out := runOut(t, "mc", "-n", "2")
	if !strings.Contains(out, "sigma") || !strings.Contains(out, "analytic estimate") {
		t.Fatalf("mc text output unexpected:\n%s", out)
	}
}

func TestSmokeNetlist(t *testing.T) {
	out := runOut(t, "netlist", "-case", "1")
	if !strings.Contains(out, "M") {
		t.Fatalf("netlist output unexpected:\n%s", out)
	}
}

func TestSmokeTecheval(t *testing.T) {
	runOut(t, "techeval")
}

func TestSmokeTwoStage(t *testing.T) {
	out := runOut(t, "twostage")
	if !strings.Contains(out, "two-stage Miller OTA") {
		t.Fatalf("twostage output unexpected:\n%s", out)
	}
}

func TestSmokeConverge(t *testing.T) {
	runOut(t, "converge")
}

func TestSmokeTrace(t *testing.T) {
	out := runOut(t, "trace")
	for _, want := range []string{"Parasitic convergence", "layout calls", "converged"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeTraceJSON(t *testing.T) {
	out := runOut(t, "trace", "-json", "-case", "4")
	var rep struct {
		Case       int  `json:"case"`
		Converged  bool `json:"converged"`
		Iterations []struct {
			Call   int     `json:"call"`
			DeltaF float64 `json:"delta_f"`
		} `json:"iterations"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("trace -json not parseable: %v\n%s", err, out)
	}
	if rep.Case != 4 || !rep.Converged || len(rep.Iterations) < 2 {
		t.Fatalf("trace report implausible: %+v", rep)
	}
	if rep.Iterations[0].DeltaF != -1 {
		t.Fatalf("first iteration delta = %g, want -1 sentinel", rep.Iterations[0].DeltaF)
	}
}

func TestSmokeFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 runs a full case-4 synthesis")
	}
	svg := filepath.Join(t.TempDir(), "ota.svg")
	out := runOut(t, "fig5", "-svg", svg)
	if !strings.Contains(out, "Fig. 5") {
		t.Fatalf("fig5 output unexpected:\n%s", out)
	}
	if fi, err := os.Stat(svg); err != nil || fi.Size() == 0 {
		t.Fatalf("fig5 svg missing: %v", err)
	}
}

func TestSmokeCorners(t *testing.T) {
	if testing.Short() {
		t.Skip("corners runs a full case-4 synthesis plus five corner sims")
	}
	out := runOut(t, "corners")
	if !strings.Contains(out, "tt:") {
		t.Fatalf("corners output unexpected:\n%s", out)
	}
}

func TestUnknownCommandExitsUsage(t *testing.T) {
	var buf bytes.Buffer
	err := run("definitely-not-a-command", nil, &buf)
	if !errors.Is(err, errUnknownCommand) {
		t.Fatalf("want errUnknownCommand, got %v", err)
	}
}

func TestSmokeTopologies(t *testing.T) {
	out := runOut(t, "topologies")
	for _, want := range []string{"folded-cascode", "two-stage", "five-t", "(* = default)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("topologies output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeSynthEveryTopology drives `loas synth -topology T` for all
// three registered plans — the CLI face of the acceptance criterion
// that each topology completes the sizing↔layout convergence loop and
// emits a convergence trace.
func TestSmokeSynthEveryTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("synth runs full case-4 synthesis with verification")
	}
	for _, topo := range []string{"folded-cascode", "two-stage", "five-t"} {
		out := runOut(t, "synth", "-topology", topo)
		for _, want := range []string{topo + " case 4", "convergence trace:", "Parasitic convergence", "GBW"} {
			if !strings.Contains(out, want) {
				t.Fatalf("synth -topology %s missing %q:\n%s", topo, want, out)
			}
		}
	}
}

func TestSmokeSynthJSON(t *testing.T) {
	out := runOut(t, "synth", "-topology", "five-t", "-json", "-skipverify")
	var rep struct {
		Summary struct {
			Topology    string `json:"topology"`
			LayoutCalls int    `json:"layout_calls"`
		} `json:"summary"`
		Iterations []struct {
			Topology string `json:"topology"`
			Call     int    `json:"call"`
		} `json:"iterations"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("synth -json not parseable: %v\n%s", err, out)
	}
	if rep.Summary.Topology != "five-t" || rep.Summary.LayoutCalls < 2 {
		t.Fatalf("summary implausible: %+v", rep.Summary)
	}
	if len(rep.Iterations) < 2 || rep.Iterations[0].Topology != "five-t" {
		t.Fatalf("iterations not labelled: %+v", rep.Iterations)
	}
}

// TestUnknownTopologyExitsNonZero: the CLI must fail with the
// registry's message listing every registered plan — same text the
// daemon returns as a 400.
func TestUnknownTopologyExitsNonZero(t *testing.T) {
	for _, cmd := range []string{"synth", "mc", "corners"} {
		var buf bytes.Buffer
		err := run(cmd, []string{"-topology", "no-such-ota"}, &buf)
		if err == nil {
			t.Fatalf("loas %s -topology no-such-ota succeeded", cmd)
		}
		msg := err.Error()
		if !strings.Contains(msg, "unknown topology") || !strings.Contains(msg, "registered:") {
			t.Fatalf("loas %s error %q lacks the registry listing", cmd, msg)
		}
		for _, name := range []string{"folded-cascode", "two-stage", "five-t"} {
			if !strings.Contains(msg, name) {
				t.Fatalf("loas %s error %q does not list %q", cmd, msg, name)
			}
		}
	}
}

func TestSmokeSynthRefine(t *testing.T) {
	out := runOut(t, "synth", "-case", "1", "-refine", "-refine-rounds", "1")
	for _, want := range []string{"refinement: 1 round(s)", "round 1: target GBW", "worst-corner margin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("refined synth output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeSynthRefineJSON(t *testing.T) {
	out := runOut(t, "synth", "-case", "1", "-refine", "-refine-rounds", "1", "-json")
	var wrapper struct {
		Summary struct {
			Refine *struct {
				MaxRounds int `json:"max_rounds"`
				BestRound int `json:"best_round"`
				Rounds    []struct {
					Round   int `json:"round"`
					Corners []struct {
						Corner string `json:"corner"`
						Met    bool   `json:"met"`
					} `json:"corners"`
				} `json:"rounds"`
			} `json:"refine"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out), &wrapper); err != nil {
		t.Fatalf("synth -refine -json not parseable: %v\n%s", err, out)
	}
	ref := wrapper.Summary.Refine
	if ref == nil || ref.MaxRounds != 1 || len(ref.Rounds) != 1 {
		t.Fatalf("refine report implausible: %+v", ref)
	}
	if len(ref.Rounds[0].Corners) != 5 {
		t.Fatalf("round 1 scored %d corners, want 5", len(ref.Rounds[0].Corners))
	}
}

func TestSynthRefineRejectsSkipVerify(t *testing.T) {
	var buf bytes.Buffer
	err := run("synth", []string{"-case", "1", "-refine", "-skipverify"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "skipverify") {
		t.Fatalf("synth -refine -skipverify: err = %v, want rejection", err)
	}
}
