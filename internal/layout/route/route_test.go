package route

import (
	"testing"

	"loas/internal/layout/geom"
	"loas/internal/techno"
)

// twoBlockCell builds a cell with two "module" blocks stacked vertically,
// each exposing ports on shared nets, with a channel between them.
func twoBlockCell() ([]geom.Rect, *geom.Cell) {
	c := geom.NewCell("top")
	// Block A occupies y 0..20000.
	blockA := geom.XYWH(0, 0, 50000, 20000)
	c.Add(techno.LayerActive, blockA, "")
	c.AddPort("a.x", "x", techno.LayerMetal1, geom.XYWH(4000, 18000, 20000, 2000))
	c.AddPort("a.y", "y", techno.LayerMetal1, geom.XYWH(28000, 18000, 20000, 2000))
	// Block B occupies y 50000..70000 (channel between 20000 and 50000).
	// Its ports sit on the opposite sides from block A so the trunks run
	// long parallel spans.
	blockB := geom.XYWH(0, 50000, 50000, 20000)
	c.Add(techno.LayerActive, blockB, "")
	c.AddPort("b.x", "x", techno.LayerMetal1, geom.XYWH(28000, 50000, 20000, 2000))
	c.AddPort("b.y", "y", techno.LayerMetal1, geom.XYWH(4000, 50000, 20000, 2000))
	return []geom.Rect{blockA, blockB}, c
}

func routeTwoBlocks(t *testing.T, nets []Net) (*Result, *geom.Cell) {
	t.Helper()
	tech := techno.Default060()
	obstacles, cell := twoBlockCell()
	res, err := Route(tech, cell, nets, Channels(obstacles, 20000))
	if err != nil {
		t.Fatal(err)
	}
	return res, cell
}

func TestChannelsFindGaps(t *testing.T) {
	obstacles := []geom.Rect{
		geom.XYWH(0, 0, 100, 100),
		geom.XYWH(0, 200, 100, 100),
		geom.XYWH(50, 220, 100, 50), // overlapping the second block
	}
	ch := Channels(obstacles, 40)
	// Expect: below (−40..0), the 100..200 gap, above (300..340).
	if len(ch) != 3 {
		t.Fatalf("channels = %+v", ch)
	}
	if ch[0].B != -40 || ch[0].T != 0 {
		t.Fatalf("bottom channel = %+v", ch[0])
	}
	if ch[1].B != 100 || ch[1].T != 200 {
		t.Fatalf("middle channel = %+v", ch[1])
	}
	if ch[2].B != 300 || ch[2].T != 340 {
		t.Fatalf("top channel = %+v", ch[2])
	}
	if (YRange{B: 2, T: 7}).H() != 5 {
		t.Fatal("YRange.H broken")
	}
}

func TestChannelsEmpty(t *testing.T) {
	if ch := Channels(nil, 100); len(ch) != 1 {
		t.Fatalf("empty obstacles: %+v", ch)
	}
}

func TestRouteConnectsPorts(t *testing.T) {
	res, cell := routeTwoBlocks(t, []Net{{Name: "x", Current: 100e-6}, {Name: "y", Current: 50e-6}})
	for _, net := range []string{"x", "y"} {
		if res.NetCap[net] <= 0 {
			t.Fatalf("net %s got no wiring cap", net)
		}
		if res.Length[net] <= 0 {
			t.Fatalf("net %s got no wire length", net)
		}
		if len(cell.NetShapes(net, techno.LayerMetal2)) == 0 {
			t.Fatalf("net %s has no trunk", net)
		}
		// Both ports must be touched by a metal-1 branch.
		for _, p := range cell.PortsOnNet(net) {
			touched := false
			for _, s := range cell.NetShapes(net, techno.LayerMetal1) {
				if s.R.Intersects(p.R) {
					touched = true
				}
			}
			if !touched {
				t.Fatalf("port %s not connected", p.Name)
			}
		}
	}
}

func TestRouteLayerDiscipline(t *testing.T) {
	// Metal-2 is horizontal-only, metal-1 vertical or short extensions;
	// no same-layer different-net overlaps anywhere.
	res, cell := routeTwoBlocks(t, []Net{{Name: "x"}, {Name: "y"}})
	for _, w := range res.Wires {
		if w.Layer == techno.LayerMetal2 && w.R.H() > w.R.W() {
			t.Fatalf("vertical metal-2 wire %v", w.R)
		}
	}
	for _, layer := range []techno.Layer{techno.LayerMetal1, techno.LayerMetal2} {
		shapes := []geom.Shape{}
		for _, s := range cell.Shapes {
			if s.Layer == layer {
				shapes = append(shapes, s)
			}
		}
		for i := 0; i < len(shapes); i++ {
			for j := i + 1; j < len(shapes); j++ {
				if shapes[i].Net != shapes[j].Net && shapes[i].R.Intersects(shapes[j].R) {
					t.Fatalf("%s short: %v (%s) overlaps %v (%s)", layer,
						shapes[i].R, shapes[i].Net, shapes[j].R, shapes[j].Net)
				}
			}
		}
	}
}

func TestRouteTrunkSpacing(t *testing.T) {
	tech := techno.Default060()
	_, cell := routeTwoBlocks(t, []Net{{Name: "x"}, {Name: "y"}})
	if msg, bad := cell.MinSpacingViolation(techno.LayerMetal2, tech.Rules.Metal2Space); bad {
		t.Fatalf("trunk spacing violation: %s", msg)
	}
	if msg, bad := cell.MinSpacingViolation(techno.LayerMetal1, tech.Rules.Metal1Space); bad {
		t.Fatalf("metal-1 spacing violation: %s", msg)
	}
}

func TestRouteCouplingBetweenTrunks(t *testing.T) {
	res, _ := routeTwoBlocks(t, []Net{{Name: "x"}, {Name: "y"}})
	// Both nets land in the same channel on adjacent tracks: coupling.
	c := res.Coupling[OrderedPair("x", "y")]
	if c <= 0 {
		t.Fatalf("no coupling between adjacent trunks (map: %v)", res.Coupling)
	}
	if c > 1e-12 {
		t.Fatalf("coupling %g F implausibly large", c)
	}
}

func TestRouteSingleOrNoPortNetsSkipped(t *testing.T) {
	tech := techno.Default060()
	cell := geom.NewCell("top")
	block := geom.XYWH(0, 0, 10000, 10000)
	cell.Add(techno.LayerActive, block, "")
	cell.AddPort("a.z", "z", techno.LayerMetal1, geom.XYWH(0, 9000, 1000, 1000))
	res, err := Route(tech, cell, []Net{{Name: "z"}, {Name: "ghost"}},
		Channels([]geom.Rect{block}, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wires) != 0 {
		t.Fatal("single-port or missing nets must not create wires")
	}
}

func TestRouteWireWidthTracksCurrent(t *testing.T) {
	resA, cellA := routeTwoBlocks(t, []Net{{Name: "x", Current: 1e-6}})
	resB, cellB := routeTwoBlocks(t, []Net{{Name: "x", Current: 5e-3}})
	wA := cellA.NetShapes("x", techno.LayerMetal2)[0].R.H()
	wB := cellB.NetShapes("x", techno.LayerMetal2)[0].R.H()
	if wB <= wA {
		t.Fatalf("5 mA trunk (%d nm) not wider than 1 µA trunk (%d nm)", wB, wA)
	}
	if resB.NetCap["x"] <= resA.NetCap["x"] {
		t.Fatal("wider wire must have more capacitance")
	}
}

func TestRouteDeterministic(t *testing.T) {
	r1, _ := routeTwoBlocks(t, []Net{{Name: "y"}, {Name: "x"}})
	r2, _ := routeTwoBlocks(t, []Net{{Name: "x"}, {Name: "y"}})
	for _, net := range []string{"x", "y"} {
		if r1.NetCap[net] != r2.NetCap[net] {
			t.Fatalf("net %s cap differs with input order: %g vs %g",
				net, r1.NetCap[net], r2.NetCap[net])
		}
	}
}

func TestRouteSpineForMultiChannelNet(t *testing.T) {
	// Three stacked blocks; a net with ports in the bottom and top
	// channels needs the margin spine.
	tech := techno.Default060()
	c := geom.NewCell("top")
	var obstacles []geom.Rect
	for i := 0; i < 3; i++ {
		b := geom.XYWH(0, int64(i)*50000, 40000, 20000)
		obstacles = append(obstacles, b)
		c.Add(techno.LayerActive, b, "")
	}
	c.AddPort("a.s", "s", techno.LayerMetal1, geom.XYWH(2000, 18000, 10000, 2000))
	c.AddPort("c.s", "s", techno.LayerMetal1, geom.XYWH(2000, 100000, 10000, 2000))
	res, err := Route(tech, c, []Net{{Name: "s"}}, Channels(obstacles, 20000))
	if err != nil {
		t.Fatal(err)
	}
	// The spine runs on the left margin: some metal-1 with x < 0.
	spine := false
	for _, w := range res.Wires {
		if w.Layer == techno.LayerMetal1 && w.R.R <= 0 && w.R.H() > 40000 {
			spine = true
		}
	}
	if !spine {
		t.Fatal("multi-channel net routed without a margin spine")
	}
}

func TestRouteErrorsWithoutChannels(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("top")
	if _, err := Route(tech, c, nil, nil); err == nil {
		t.Fatal("no channels accepted")
	}
}

func TestOrderedPair(t *testing.T) {
	if OrderedPair("b", "a") != (NetPair{A: "a", B: "b"}) {
		t.Fatal("pair not canonical")
	}
	if OrderedPair("a", "b") != OrderedPair("b", "a") {
		t.Fatal("pair order-dependent")
	}
}
