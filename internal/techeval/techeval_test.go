package techeval

import (
	"math"
	"strings"
	"testing"

	"loas/internal/techno"
)

const um = techno.Micron

func TestExtractVTNearCardValue(t *testing.T) {
	tech := techno.Default060()
	for _, mt := range []techno.MOSType{techno.NMOS, techno.PMOS} {
		vt := ExtractVT(tech, mt, 10*um, tech.Feature)
		card := tech.Card(mt)
		if math.Abs(vt-card.VT0) > 0.15 {
			t.Fatalf("%s: extracted VT %.3f far from card VT0 %.3f", mt, vt, card.VT0)
		}
	}
}

func TestGmIDCurveShape(t *testing.T) {
	tech := techno.Default060()
	curve := GmIDCurve(tech, techno.NMOS, 10*um, 1*um, 41)
	if len(curve) < 20 {
		t.Fatalf("curve too short: %d points", len(curve))
	}
	// gm/ID falls monotonically with VGS past weak inversion.
	for i := 1; i < len(curve); i++ {
		if curve[i].GmID > curve[i-1].GmID*1.01 {
			t.Fatalf("gm/ID not monotone at VGS=%.2f", curve[i].VGS)
		}
	}
	// Current is monotone increasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].ID <= curve[i-1].ID {
			t.Fatalf("ID not monotone at VGS=%.2f", curve[i].VGS)
		}
	}
}

func TestGmIDWeakInversionPlateau(t *testing.T) {
	tech := techno.Default060()
	c := Characterize(tech, techno.NMOS)
	// Plateau ≈ 1/(n·vt); n ≈ 1.36 → ≈ 28/V. Allow a broad band.
	if c.GmIDMax < 18 || c.GmIDMax > 40 {
		t.Fatalf("gm/ID plateau %.1f outside the physical band", c.GmIDMax)
	}
}

func TestFTScalesWithLength(t *testing.T) {
	tech := techno.Default060()
	fShort := FT(tech, techno.NMOS, 10*um, 0.6*um, 0.2)
	fLong := FT(tech, techno.NMOS, 10*um, 2.4*um, 0.2)
	// fT ∝ µVeff/L²: 16× between these lengths ideally; demand > 6×.
	if fShort < 6*fLong {
		t.Fatalf("fT(0.6µ)=%.2g should be ≫ fT(2.4µ)=%.2g", fShort, fLong)
	}
	// Sub-GHz to few-GHz for a 0.6 µm process.
	if fShort < 0.3e9 || fShort > 30e9 {
		t.Fatalf("fT = %.2f GHz implausible for 0.6 µm", fShort/1e9)
	}
}

func TestNMOSFasterThanPMOS(t *testing.T) {
	tech := techno.Default060()
	fn := FT(tech, techno.NMOS, 10*um, tech.Feature, 0.2)
	fp := FT(tech, techno.PMOS, 10*um, tech.Feature, 0.2)
	if fn <= fp {
		t.Fatalf("NMOS fT %.2g must beat PMOS %.2g", fn, fp)
	}
}

func TestIntrinsicGainGrowsWithL(t *testing.T) {
	tech := techno.Default060()
	a1 := IntrinsicGain(tech, techno.NMOS, 10*um, 1*um, 0.2)
	a3 := IntrinsicGain(tech, techno.NMOS, 30*um, 3*um, 0.2)
	if a3 <= a1 {
		t.Fatalf("intrinsic gain should grow with L: %.0f vs %.0f", a3, a1)
	}
	if a1 < 20 || a1 > 500 {
		t.Fatalf("A0(1 µm) = %.0f implausible", a1)
	}
}

func TestSummaryAndCompare(t *testing.T) {
	tech := techno.Default060()
	c := Characterize(tech, techno.PMOS)
	if !strings.Contains(c.Summary(), "pmos") {
		t.Fatalf("summary: %s", c.Summary())
	}

	// A hypothetical faster process: thinner oxide, shorter channel.
	fast := techno.Default060()
	fast.Name = "generic-cmos-0.35um"
	fast.Feature = 0.35 * um
	fast.N.Cox *= 1.5
	fast.P.Cox *= 1.5
	cmp := Compare(tech, fast)
	for _, want := range []string{"nmos", "pmos", "fT", "gm/ID"} {
		if !strings.Contains(cmp, want) {
			t.Fatalf("comparison missing %q:\n%s", want, cmp)
		}
	}
	// The shorter-channel process must show higher fT.
	cSlow := Characterize(tech, techno.NMOS)
	cFast := Characterize(fast, techno.NMOS)
	if cFast.FTStrong <= cSlow.FTStrong {
		t.Fatal("shorter channel should be faster")
	}
}
