// Package geom is the layout geometry kernel: integer-nanometre
// rectangles tagged with a mask layer and a net, grouped into cells with
// named ports. Everything the motif generators, routers and extractors
// manipulate is built from these types. Using integers on the
// manufacturing grid makes geometry exactly reproducible — the property
// the synthesis loop's parasitic fixpoint depends on.
package geom

import (
	"fmt"
	"math"

	"loas/internal/techno"
)

// Rect is an axis-aligned rectangle in nanometres. L ≤ R and B ≤ T for a
// valid rectangle.
type Rect struct {
	L, B, R, T int64
}

// XYWH builds a rectangle from an origin and size.
func XYWH(x, y, w, h int64) Rect { return Rect{L: x, B: y, R: x + w, T: y + h} }

// W returns the width.
func (r Rect) W() int64 { return r.R - r.L }

// H returns the height.
func (r Rect) H() int64 { return r.T - r.B }

// Valid reports whether the rectangle is non-degenerate.
func (r Rect) Valid() bool { return r.R > r.L && r.T > r.B }

// Area returns the area in nm².
func (r Rect) Area() int64 { return r.W() * r.H() }

// AreaUM2 returns the area in µm².
func (r Rect) AreaUM2() float64 { return float64(r.W()) * float64(r.H()) * 1e-6 }

// AreaM2 returns the area in m².
func (r Rect) AreaM2() float64 { return float64(r.W()) * float64(r.H()) * 1e-18 }

// PerimM returns the perimeter in metres.
func (r Rect) PerimM() float64 { return 2 * float64(r.W()+r.H()) * 1e-9 }

// Translate returns the rectangle moved by (dx, dy).
func (r Rect) Translate(dx, dy int64) Rect {
	return Rect{L: r.L + dx, B: r.B + dy, R: r.R + dx, T: r.T + dy}
}

// Union returns the bounding box of two rectangles.
func (r Rect) Union(o Rect) Rect {
	if !r.Valid() {
		return o
	}
	if !o.Valid() {
		return r
	}
	return Rect{
		L: min64(r.L, o.L), B: min64(r.B, o.B),
		R: max64(r.R, o.R), T: max64(r.T, o.T),
	}
}

// Intersects reports whether the rectangles overlap (touching edges do not
// count).
func (r Rect) Intersects(o Rect) bool {
	return r.L < o.R && o.L < r.R && r.B < o.T && o.B < r.T
}

// Intersect returns the overlap region (may be invalid when disjoint).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		L: max64(r.L, o.L), B: max64(r.B, o.B),
		R: min64(r.R, o.R), T: min64(r.T, o.T),
	}
}

// CenterX returns the x centre (nm, may round down half a grid).
func (r Rect) CenterX() int64 { return (r.L + r.R) / 2 }

// CenterY returns the y centre.
func (r Rect) CenterY() int64 { return (r.B + r.T) / 2 }

// Expand grows the rectangle by d on every side.
func (r Rect) Expand(d int64) Rect {
	return Rect{L: r.L - d, B: r.B - d, R: r.R + d, T: r.T + d}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.L, r.B, r.W(), r.H())
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Shape is a rectangle on a mask layer, optionally bound to a net.
type Shape struct {
	Layer techno.Layer
	R     Rect
	Net   string
}

// Port is a named connection point of a cell: a rectangle on a routable
// layer carrying a net.
type Port struct {
	Name  string
	Net   string
	Layer techno.Layer
	R     Rect
}

// Cell is a placed collection of shapes and ports. Cells compose by
// merging translated children, mirroring the flat procedural style of the
// CAIRO layout language.
type Cell struct {
	Name   string
	Shapes []Shape
	Ports  []Port
}

// NewCell creates an empty cell.
func NewCell(name string) *Cell { return &Cell{Name: name} }

// Add appends a shape.
func (c *Cell) Add(layer techno.Layer, r Rect, net string) {
	c.Shapes = append(c.Shapes, Shape{Layer: layer, R: r, Net: net})
}

// AddPort appends a port (also visible as a shape for extraction).
func (c *Cell) AddPort(name, net string, layer techno.Layer, r Rect) {
	c.Ports = append(c.Ports, Port{Name: name, Net: net, Layer: layer, R: r})
}

// BBox returns the bounding box over all shapes and ports.
func (c *Cell) BBox() Rect {
	var bb Rect
	for _, s := range c.Shapes {
		bb = bb.Union(s.R)
	}
	for _, p := range c.Ports {
		bb = bb.Union(p.R)
	}
	return bb
}

// Translate moves every shape and port by (dx, dy).
func (c *Cell) Translate(dx, dy int64) {
	for i := range c.Shapes {
		c.Shapes[i].R = c.Shapes[i].R.Translate(dx, dy)
	}
	for i := range c.Ports {
		c.Ports[i].R = c.Ports[i].R.Translate(dx, dy)
	}
}

// Merge copies child's shapes and ports, translated by (dx, dy), into c.
// Port names are prefixed with the child cell name to stay unique.
func (c *Cell) Merge(child *Cell, dx, dy int64) {
	for _, s := range child.Shapes {
		c.Shapes = append(c.Shapes, Shape{Layer: s.Layer, R: s.R.Translate(dx, dy), Net: s.Net})
	}
	for _, p := range child.Ports {
		c.Ports = append(c.Ports, Port{
			Name:  child.Name + "." + p.Name,
			Net:   p.Net,
			Layer: p.Layer,
			R:     p.R.Translate(dx, dy),
		})
	}
}

// PortsOnNet returns every port carrying the given net.
func (c *Cell) PortsOnNet(net string) []Port {
	var out []Port
	for _, p := range c.Ports {
		if p.Net == net {
			out = append(out, p)
		}
	}
	return out
}

// LayerArea sums the area (m²) of all shapes on a layer, ignoring
// overlaps between shapes (procedural generators do not overlap same-layer
// shapes except at abutments, where double counting is negligible).
func (c *Cell) LayerArea(layer techno.Layer) float64 {
	var a float64
	for _, s := range c.Shapes {
		if s.Layer == layer {
			a += s.R.AreaM2()
		}
	}
	return a
}

// NetShapes returns all shapes on a net and layer.
func (c *Cell) NetShapes(net string, layer techno.Layer) []Shape {
	var out []Shape
	for _, s := range c.Shapes {
		if s.Net == net && s.Layer == layer {
			out = append(out, s)
		}
	}
	return out
}

// CheckGrid verifies every coordinate sits on the manufacturing grid and
// returns the first offender, if any.
func (c *Cell) CheckGrid(grid int64) error {
	if grid <= 1 {
		return nil
	}
	for _, s := range c.Shapes {
		for _, v := range [4]int64{s.R.L, s.R.B, s.R.R, s.R.T} {
			if v%grid != 0 {
				return fmt.Errorf("geom: %s shape %v off grid %d", s.Layer, s.R, grid)
			}
		}
	}
	return nil
}

// MinSpacingViolation scans same-layer shape pairs on different nets for
// spacing violations and returns a description of the first one found.
// O(n²); cells here are small (hundreds of shapes).
func (c *Cell) MinSpacingViolation(layer techno.Layer, space int64) (string, bool) {
	var shapes []Shape
	for _, s := range c.Shapes {
		if s.Layer == layer {
			shapes = append(shapes, s)
		}
	}
	for i := 0; i < len(shapes); i++ {
		for j := i + 1; j < len(shapes); j++ {
			a, b := shapes[i], shapes[j]
			if a.Net == b.Net && a.Net != "" {
				continue
			}
			if a.R.Expand(space).Intersects(b.R) && !a.R.Intersects(b.R) {
				return fmt.Sprintf("%s: %v (%s) to %v (%s) closer than %d nm",
					layer, a.R, a.Net, b.R, b.Net, space), true
			}
		}
	}
	return "", false
}

// WireCapM computes the capacitance to substrate of a wire rectangle using
// area + fringe coefficients (F).
func WireCapM(r Rect, cArea, cFringe float64) float64 {
	return r.AreaM2()*cArea + r.PerimM()*cFringe
}

// CouplingDistanceCutoff is the gap, in multiples of the minimum spacing,
// beyond which lateral coupling is treated as zero (the usual extractor
// cutoff: the lateral field is shielded by the substrate return long
// before this).
const CouplingDistanceCutoff = 20

// CouplingCapM returns the lateral coupling capacitance between two
// parallel wire rectangles: coefficient at minimum spacing, scaled by
// minSpace/actual and by the parallel-run length. Zero when they do not
// run alongside each other or are farther apart than the cutoff.
func CouplingCapM(a, b Rect, cCouple float64, minSpaceNM int64) float64 {
	// Horizontal overlap with vertical gap, or vice versa.
	overlapX := min64(a.R, b.R) - max64(a.L, b.L)
	overlapY := min64(a.T, b.T) - max64(a.B, b.B)
	var run, gap int64
	switch {
	case overlapX > 0 && overlapY <= 0:
		run = overlapX
		gap = max64(a.B, b.B) - min64(a.T, b.T)
	case overlapY > 0 && overlapX <= 0:
		run = overlapY
		gap = max64(a.L, b.L) - min64(a.R, b.R)
	default:
		return 0
	}
	if gap <= 0 || gap > CouplingDistanceCutoff*minSpaceNM {
		return 0
	}
	scale := float64(minSpaceNM) / float64(gap)
	if scale > 1 {
		scale = 1
	}
	return cCouple * float64(run) * 1e-9 * scale
}

// SnapRect snaps all rectangle edges outwards onto the grid.
func SnapRect(r Rect, grid int64) Rect {
	if grid <= 1 {
		return r
	}
	snapDn := func(v int64) int64 { return int64(math.Floor(float64(v)/float64(grid))) * grid }
	snapUp := func(v int64) int64 { return int64(math.Ceil(float64(v)/float64(grid))) * grid }
	return Rect{L: snapDn(r.L), B: snapDn(r.B), R: snapUp(r.R), T: snapUp(r.T)}
}
