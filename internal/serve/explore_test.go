package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"loas/internal/core"
	"loas/internal/explore"
	"loas/internal/obs"
	"loas/internal/sizing"
)

// summaryBackend returns a valid core.Summary that is a pure function
// of the spec — fast, deterministic, and with real gain/GBW/power/area
// trade-offs so exploration builds non-trivial Pareto fronts. Targets
// past 300 MHz fail deterministically, modelling sizing infeasibility.
type summaryBackend struct {
	stubBackend
}

func (b *summaryBackend) Synthesize(_ context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	b.calls.Add(1)
	if spec.GBW > 3e8 {
		return nil, nil, fmt.Errorf("sizing: gbw target %g Hz is out of reach", spec.GBW)
	}
	sum := core.Summary{
		Topology: req.Topology,
		Case:     req.Case,
		Extracted: sizing.Performance{
			DCGainDB: 80 - spec.GBW/1e7, // faster → less gain
			GBW:      0.97 * spec.GBW,
			PhaseDeg: spec.PM,
			Power:    1e-4 * (spec.GBW / 1e7) * (spec.CL / 1e-12), // faster, heavier → hotter
		},
		AreaUM2: 1500 + spec.PM*20 + spec.GBW/1e5,
	}
	body, err := marshalJSON(sum)
	return body, stubIterations, err
}

// TestExploreGridDeterministicAcrossWorkers is the determinism
// acceptance contract: the same exploration on a 1-worker and an
// 8-worker daemon returns byte-identical reports under the same key,
// and a rerun replays from cache byte-identically.
func TestExploreGridDeterministicAcrossWorkers(t *testing.T) {
	const body = `{"axes":{"gbw":[4e7,6.5e7,9e7],"pm":[55,70]},"case":1}`
	_, ts1 := newStubServer(t, Config{Workers: 1}, &summaryBackend{})
	_, ts8 := newStubServer(t, Config{Workers: 8}, &summaryBackend{})

	r1, b1 := post(t, ts1.URL+"/v1/explore", body)
	r8, b8 := post(t, ts8.URL+"/v1/explore", body)
	if r1.StatusCode != http.StatusOK || r8.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d: %s %s", r1.StatusCode, r8.StatusCode, b1, b8)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("worker count changed the report:\n1: %s\n8: %s", b1, b8)
	}
	if k1, k8 := r1.Header.Get("X-Loas-Key"), r8.Header.Get("X-Loas-Key"); k1 == "" || k1 != k8 {
		t.Fatalf("keys %q vs %q, want equal", k1, k8)
	}
	if h := r1.Header.Get("X-Loas-Cache"); h != "miss" {
		t.Fatalf("cold explore X-Loas-Cache = %q, want miss", h)
	}

	// Rerun: the report itself is content-addressed.
	r1b, b1b := post(t, ts1.URL+"/v1/explore", body)
	if h := r1b.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("rerun X-Loas-Cache = %q, want hit", h)
	}
	if !bytes.Equal(b1, b1b) {
		t.Fatal("cache hit is not byte-identical")
	}

	var rep ExploreReport
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "grid" || rep.Case != 1 || len(rep.Results) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	tf := rep.Results[0]
	if tf.Topology != sizing.DefaultTopology || tf.Probes != 6 || tf.Infeasible != 0 {
		t.Fatalf("front = %+v, want 6 feasible probes of the default topology", tf)
	}
	if len(tf.Front) == 0 || len(tf.Front) > tf.Probes {
		t.Fatalf("front size %d out of range (0, %d]", len(tf.Front), tf.Probes)
	}
	// The front is a real Pareto front: mutually non-dominated, feasible.
	for i, p := range tf.Front {
		if !p.Feasible {
			t.Fatalf("front point %d infeasible: %+v", i, p)
		}
		for j, q := range tf.Front {
			if i != j && explore.Dominates(p.Metrics, q.Metrics) {
				t.Fatalf("front point %d dominates front point %d", i, j)
			}
		}
	}
}

// TestExploreSpellingsShareCacheEntry: shuffled and duplicated axis
// values, duplicated topology names, and explicitly spelled-out inert
// defaults (budget/step in grid mode) all canonicalize onto one key.
func TestExploreSpellingsShareCacheEntry(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	r1, b1 := post(t, ts.URL+"/v1/explore",
		`{"axes":{"gbw":[9e7,4e7,4e7],"pm":[70,55]},"case":1}`)
	spelled := fmt.Sprintf(
		`{"axes":{"gbw":[4e7,9e7],"pm":[55,70]},"mode":"grid","budget":64,"step":0.15,"case":1,"topologies":[%q,%q]}`,
		sizing.DefaultTopology, sizing.DefaultTopology)
	r2, b2 := post(t, ts.URL+"/v1/explore", spelled)
	if k1, k2 := r1.Header.Get("X-Loas-Key"), r2.Header.Get("X-Loas-Key"); k1 != k2 {
		t.Fatalf("canonicalized spellings keyed apart: %q vs %q", k1, k2)
	}
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("respelled request X-Loas-Cache = %q, want hit", h)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("respelled request body differs")
	}
	if got := stub.calls.Load(); got != 4 {
		t.Fatalf("backend calls = %d, want 4 (respelling must cost nothing)", got)
	}

	// Guided mode keys apart from grid even on the same axes.
	r3, _ := post(t, ts.URL+"/v1/explore",
		`{"axes":{"gbw":[4e7,9e7],"pm":[55,70]},"mode":"guided","budget":4,"case":1}`)
	if r3.Header.Get("X-Loas-Key") == r1.Header.Get("X-Loas-Key") {
		t.Fatal("guided exploration collided with the grid key")
	}
}

// TestExploreProbesShareSynthesizeCache: an exploration probe and a
// plain POST /v1/synthesize of the same (spec, case) are the same
// content address — exploring first makes the synthesize free.
func TestExploreProbesShareSynthesizeCache(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	plan, err := sizing.Lookup(sizing.DefaultTopology)
	if err != nil {
		t.Fatal(err)
	}
	base := plan.DefaultSpec()
	_, data := post(t, ts.URL+"/v1/explore",
		fmt.Sprintf(`{"axes":{"gbw":[%g]},"case":1}`, base.GBW))
	var rep ExploreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if stub.calls.Load() != 1 || rep.Results[0].Probes != 1 {
		t.Fatalf("calls %d probes %d, want 1/1", stub.calls.Load(), rep.Results[0].Probes)
	}

	resp, _ := post(t, ts.URL+"/v1/synthesize", `{"case":1}`)
	if h := resp.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("synthesize after explore X-Loas-Cache = %q, want hit", h)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("backend calls = %d, want 1 (probe result must be reused)", got)
	}
}

// TestExploreGuidedDeterministicAndBounded: guided mode respects its
// probe budget, reports rounds, and is worker-invariant too.
func TestExploreGuidedDeterministicAndBounded(t *testing.T) {
	const body = `{"axes":{"gbw":[4e7,9e7]},"mode":"guided","budget":12,"step":0.2,"case":2}`
	_, ts1 := newStubServer(t, Config{Workers: 1}, &summaryBackend{})
	_, ts8 := newStubServer(t, Config{Workers: 8}, &summaryBackend{})

	_, b1 := post(t, ts1.URL+"/v1/explore", body)
	_, b8 := post(t, ts8.URL+"/v1/explore", body)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("guided search is worker-dependent:\n1: %s\n8: %s", b1, b8)
	}
	var rep ExploreReport
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "guided" || rep.Budget != 12 || rep.Step != 0.2 {
		t.Fatalf("report echoes %+v", rep)
	}
	tf := rep.Results[0]
	if tf.Probes < 2 || tf.Probes > 12 {
		t.Fatalf("guided probes = %d, want within [2, 12]", tf.Probes)
	}
	if tf.Rounds < 1 {
		t.Fatalf("guided rounds = %d, want >= 1", tf.Rounds)
	}
}

// TestExploreInfeasibleShapesFront: a deterministic sizing failure is
// exploration data — counted, excluded from the front, cacheable — not
// an HTTP error.
func TestExploreInfeasibleShapesFront(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	resp, data := post(t, ts.URL+"/v1/explore", `{"axes":{"gbw":[4e7,4e8]},"case":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rep ExploreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	tf := rep.Results[0]
	if tf.Probes != 2 || tf.Infeasible != 1 || len(tf.Front) != 1 {
		t.Fatalf("front = %+v, want 2 probes, 1 infeasible, front of 1", tf)
	}
	if tf.Front[0].Spec.GBW != 4e7 {
		t.Fatalf("front kept the infeasible point: %+v", tf.Front[0])
	}

	r2, data2 := post(t, ts.URL+"/v1/explore", `{"axes":{"gbw":[4e7,4e8]},"case":1}`)
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("partially-infeasible report not cached: X-Loas-Cache = %q", h)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("cached infeasibility report differs")
	}
}

// TestExploreParentLinkedRuns: the exploration is one parent run
// (kind=explore) and each probe a child synthesize run.
func TestExploreParentLinkedRuns(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/explore", `{"axes":{"gbw":[4e7,6.5e7]},"case":1}`)

	var parents RunsReport
	getJSON(t, ts.URL+"/v1/runs?kind=explore", &parents)
	if len(parents.Runs) != 1 || parents.Runs[0].Outcome != outcomeOK {
		t.Fatalf("explore run listing = %+v", parents.Runs)
	}
	var kids RunsReport
	getJSON(t, ts.URL+"/v1/runs?parent="+parents.Runs[0].ID, &kids)
	if len(kids.Runs) != 2 {
		t.Fatalf("probe children = %d, want 2: %+v", len(kids.Runs), kids.Runs)
	}
	for _, r := range kids.Runs {
		if r.Kind != "synthesize" {
			t.Fatalf("probe child kind %q", r.Kind)
		}
	}
}

// TestExploreValidation: malformed explorations never reach the backend.
func TestExploreValidation(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	// A grid over the 512-point bound: 33 × 16 = 528.
	var big strings.Builder
	big.WriteString(`{"axes":{"gbw":[`)
	for i := 0; i < 33; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, "%g", 4e7+float64(i)*1e6)
	}
	big.WriteString(`],"pm":[`)
	for i := 0; i < 16; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, "%g", 45+float64(i))
	}
	big.WriteString(`]}}`)

	for _, tc := range []struct{ body, wantIn string }{
		{`{"mode":"random"}`, "mode"},
		{`{"axes":{"pm":[95]}}`, "pm"},
		{`{"axes":{"gbw":[-4e7]}}`, "gbw"},
		{`{"mode":"guided","budget":2000}`, "budget"},
		{`{"mode":"guided","step":1.5}`, "step"},
		{`{"case":9}`, "case"},
		{`{"topologies":["no-such-ota"]}`, "no-such-ota"},
		{big.String(), "exceeds the 512-point bound"},
		{`not json`, ""},
	} {
		resp, data := post(t, ts.URL+"/v1/explore", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%.60s: status %d (%s), want 400", tc.body, resp.StatusCode, data)
		}
		if tc.wantIn != "" && !strings.Contains(string(data), tc.wantIn) {
			t.Errorf("%.60s: error %s does not mention %q", tc.body, data, tc.wantIn)
		}
	}
	if stub.calls.Load() != 0 {
		t.Fatalf("invalid explorations reached the backend %d times", stub.calls.Load())
	}
}
