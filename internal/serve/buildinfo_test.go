package serve

import (
	"runtime/debug"
	"testing"
)

func TestComputeBuildVersion(t *testing.T) {
	rev := "0123456789abcdef0123456789abcdef01234567"
	cases := []struct {
		name string
		bi   *debug.BuildInfo
		ok   bool
		want string
	}{
		{"no build info", nil, false, "unknown"},
		{"module version wins",
			&debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}}, true, "v1.2.3"},
		{"devel falls through to vcs",
			&debug.BuildInfo{Main: debug.Module{Version: "(devel)"}, Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: rev},
			}}, true, rev[:12]},
		{"dirty tree marked",
			&debug.BuildInfo{Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: rev},
				{Key: "vcs.modified", Value: "true"},
			}}, true, rev[:12] + "+dirty"},
		{"short revision kept whole",
			&debug.BuildInfo{Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "abc123"},
			}}, true, "abc123"},
		{"nothing to go on", &debug.BuildInfo{}, true, "unknown"},
	}
	for _, tc := range cases {
		if got := computeBuildVersion(tc.bi, tc.ok); got != tc.want {
			t.Errorf("%s: computeBuildVersion = %q, want %q", tc.name, got, tc.want)
		}
	}
	if BuildVersion() == "" {
		t.Error("BuildVersion() must never be empty")
	}
	if BuildVersion() != BuildVersion() {
		t.Error("BuildVersion() must be stable")
	}
}
