// Package extract defines the parasitic report that flows from the layout
// tool back to the sizing tool — the heart of the paper's methodology —
// and applies it to a circuit netlist to build the "extracted netlist"
// used for verification.
//
// The report carries exactly the information the paper lists in §2:
// per-transistor layout style (folds, finger widths, internal/external
// diffusions), routing capacitance including coupling between wires, and
// exact well sizes for floating-well capacitance.
package extract

import (
	"fmt"
	"sort"
	"strings"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/route"
)

// Parasitics is the layout tool's report.
type Parasitics struct {
	// DeviceGeom holds the exact junction geometry per transistor name.
	DeviceGeom map[string]device.DiffGeom
	// Folds holds the chosen fold plan per transistor name.
	Folds map[string]device.FoldPlan
	// NetCap is the wiring capacitance to substrate per net (F), from
	// module-internal rails plus top-level routing.
	NetCap map[string]float64
	// Coupling is inter-net coupling capacitance (F).
	Coupling map[route.NetPair]float64
	// WellCap is the floating-well capacitance per bulk net (F).
	WellCap map[string]float64
	// WidthUM, HeightUM, AreaUM2 summarize the floorplan.
	WidthUM, HeightUM, AreaUM2 float64
	// LayoutCalls counts how many times the layout tool ran to produce
	// this report (for the convergence experiment).
	LayoutCalls int
}

// New returns an empty report.
func New() *Parasitics {
	return &Parasitics{
		DeviceGeom: map[string]device.DiffGeom{},
		Folds:      map[string]device.FoldPlan{},
		NetCap:     map[string]float64{},
		Coupling:   map[route.NetPair]float64{},
		WellCap:    map[string]float64{},
	}
}

// TotalNetCap returns wiring + well capacitance attached to a net.
func (p *Parasitics) TotalNetCap(net string) float64 {
	return p.NetCap[net] + p.WellCap[net]
}

// TotalCap sums wiring + well capacitance over every net in the report —
// the single scalar the convergence trace plots per layout call. Summed
// in sorted net order so the float result is run-to-run reproducible.
func (p *Parasitics) TotalCap() float64 {
	var c float64
	for _, n := range sortedKeys(p.NetCap) {
		c += p.NetCap[n]
	}
	for _, n := range sortedKeys(p.WellCap) {
		c += p.WellCap[n]
	}
	return c
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TotalFolds sums the gate-finger counts of the fold plan across all
// devices (the trace's layout-style snapshot).
func (p *Parasitics) TotalFolds() int {
	var f int
	for _, fp := range p.Folds {
		f += fp.Folds
	}
	return f
}

// CouplingTo sums coupling capacitance between net and every other net
// (the worst-case grounded approximation the sizing plan lumps onto a
// node). Pairs are summed in sorted order: this sum feeds the sizing
// evaluation, so its float result must not depend on map iteration
// order.
func (p *Parasitics) CouplingTo(net string) float64 {
	var pairs []route.NetPair
	for pair := range p.Coupling {
		if pair.A == net || pair.B == net {
			pairs = append(pairs, pair)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	var c float64
	for _, pair := range pairs {
		c += p.Coupling[pair]
	}
	return c
}

// MaxDelta returns the largest absolute difference between two reports'
// per-net capacitances and per-device junction areas, the convergence
// criterion of the synthesis loop ("repeated till the calculated
// parasitics remain unchanged").
func MaxDelta(a, b *Parasitics) float64 {
	var d float64
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	nets := map[string]bool{}
	for n := range a.NetCap {
		nets[n] = true
	}
	for n := range b.NetCap {
		nets[n] = true
	}
	for n := range nets {
		if dd := abs(a.TotalNetCap(n) - b.TotalNetCap(n)); dd > d {
			d = dd
		}
	}
	devs := map[string]bool{}
	for n := range a.DeviceGeom {
		devs[n] = true
	}
	for n := range b.DeviceGeom {
		devs[n] = true
	}
	// Junction geometry differences expressed as capacitance-equivalent
	// using a representative 0.5 fF/µm² bottom + 0.35 fF/µm sidewall.
	for n := range devs {
		ga, gb := a.DeviceGeom[n], b.DeviceGeom[n]
		dd := abs(ga.AD-gb.AD)*0.5e-3 + abs(ga.PD-gb.PD)*0.35e-9
		dd += abs(ga.AS-gb.AS)*0.5e-3 + abs(ga.PS-gb.PS)*0.35e-9
		if dd > d {
			d = dd
		}
	}
	return d
}

// ApplyOptions selects which parasitics enter a netlist — these map
// one-to-one onto the four sizing cases of the paper's Table 1.
type ApplyOptions struct {
	// Junction selects the diffusion model: None (case 1), OneFold
	// (case 2) or Exact (cases 3–4, uses DeviceGeom).
	Junction JunctionModel
	// Routing attaches wiring + coupling + well capacitances (case 4 and
	// every extracted netlist).
	Routing bool
	// GroundNet is the netlist node treated as AC ground for lumping
	// (defaults to circuit.Ground).
	GroundNet string
}

// JunctionModel enumerates diffusion-parasitic treatments.
type JunctionModel int

// Junction models, in increasing fidelity.
const (
	JunctionNone JunctionModel = iota
	JunctionOneFold
	JunctionExact
)

// String implements fmt.Stringer.
func (j JunctionModel) String() string {
	switch j {
	case JunctionNone:
		return "none"
	case JunctionOneFold:
		return "one-fold"
	case JunctionExact:
		return "exact"
	}
	return fmt.Sprintf("junction(%d)", int(j))
}

// Apply writes the report into a netlist: every MOSFET gets its junction
// geometry, and (with Routing) every net gets a lumped wiring capacitor
// plus explicit coupling capacitors. Supply-like nets (those named in
// acGround) are skipped for lumping since they are AC ground anyway.
func (p *Parasitics) Apply(ckt *circuit.Circuit, opts ApplyOptions, oneFold func(name string, w float64) device.DiffGeom, acGround ...string) {
	gnd := opts.GroundNet
	if gnd == "" {
		gnd = circuit.Ground
	}
	isGround := map[string]bool{gnd: true}
	for _, g := range acGround {
		isGround[g] = true
	}

	for _, m := range ckt.MOSFETs() {
		switch opts.Junction {
		case JunctionNone:
			m.Dev.Geom = device.DiffGeom{}
		case JunctionOneFold:
			m.Dev.Geom = oneFold(m.Name, m.Dev.W)
		case JunctionExact:
			if g, ok := p.DeviceGeom[m.Name]; ok {
				m.Dev.Geom = g
			}
			// The layout snaps finger widths to the grid; the realized
			// total width is what the extracted netlist simulates (the
			// mechanism behind the paper's residual offset in case 2).
			if f, ok := p.Folds[m.Name]; ok && f.TotalW() > 0 {
				m.Dev.W = f.TotalW()
			}
		}
	}
	if !opts.Routing {
		return
	}

	// Deterministic order for reproducible netlists.
	var nets []string
	for n := range p.NetCap {
		nets = append(nets, n)
	}
	for n := range p.WellCap {
		if _, dup := p.NetCap[n]; !dup {
			nets = append(nets, n)
		}
	}
	sort.Strings(nets)
	for _, n := range nets {
		if isGround[n] {
			continue
		}
		if _, ok := ckt.NodeIndex(n); !ok {
			continue // net exists only in the layout (e.g. dummies)
		}
		c := p.TotalNetCap(n)
		if c <= 0 {
			continue
		}
		ckt.Add(&circuit.Capacitor{Name: "par_" + sanitize(n), A: n, B: gnd, C: c})
	}

	var pairs []route.NetPair
	for pr := range p.Coupling {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pr := range pairs {
		c := p.Coupling[pr]
		if c <= 0 {
			continue
		}
		_, okA := ckt.NodeIndex(pr.A)
		_, okB := ckt.NodeIndex(pr.B)
		if !okA || !okB {
			continue
		}
		a, b := pr.A, pr.B
		if isGround[a] && isGround[b] {
			continue
		}
		if isGround[a] {
			a = gnd
		}
		if isGround[b] {
			b = gnd
		}
		ckt.Add(&circuit.Capacitor{Name: "cc_" + sanitize(pr.A) + "_" + sanitize(pr.B), A: a, B: b, C: c})
	}
}

func sanitize(n string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, n)
}

// Summary renders a human-readable report (used by the CLI and
// EXPERIMENTS.md generation).
func (p *Parasitics) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "layout %0.1f x %0.1f um  area %0.0f um2  (%d layout call(s))\n",
		p.WidthUM, p.HeightUM, p.AreaUM2, p.LayoutCalls)
	var nets []string
	for n := range p.NetCap {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, n := range nets {
		fmt.Fprintf(&b, "  net %-8s  %7.1f fF wiring", n, p.NetCap[n]*1e15)
		if w := p.WellCap[n]; w > 0 {
			fmt.Fprintf(&b, " + %6.1f fF well", w*1e15)
		}
		b.WriteString("\n")
	}
	var pairs []route.NetPair
	for pr := range p.Coupling {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pr := range pairs {
		fmt.Fprintf(&b, "  coupling %s <-> %s  %6.2f fF\n", pr.A, pr.B, p.Coupling[pr]*1e15)
	}
	return b.String()
}
