package serve

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"loas/internal/device"
)

// TestMetricsEvalMemoCounters: the device-evaluation memo's hit/miss
// counters are registered in the default observability registry and
// surface on /metrics, and the totals move when a memo serves lookups.
func TestMetricsEvalMemoCounters(t *testing.T) {
	scrape := func(ts string) map[string]int64 {
		resp, err := http.Get(ts + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		re := regexp.MustCompile(`(?m)^(loas_eval_memo_(?:hits|misses)_total) (\d+)$`)
		for _, m := range re.FindAllStringSubmatch(string(body), -1) {
			v, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			out[m[1]] = v
		}
		for _, want := range []string{
			"# TYPE loas_eval_memo_hits_total counter",
			"# TYPE loas_eval_memo_misses_total counter",
		} {
			if !strings.Contains(string(body), want) {
				t.Fatalf("metrics missing %q", want)
			}
		}
		return out
	}

	_, ts := newStubServer(t, Config{}, &stubBackend{})
	before := scrape(ts.URL)

	// One miss then one hit through a live memo (counters are
	// process-wide; other tests may add more, so assert deltas as
	// minimums).
	memo := device.NewMemo(0)
	key := memo.Key("serve-metrics-test", nil, 1, 2, 3)
	for i := 0; i < 2; i++ {
		if _, err := memo.Float(key, func() (float64, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}

	after := scrape(ts.URL)
	if d := after["loas_eval_memo_misses_total"] - before["loas_eval_memo_misses_total"]; d < 1 {
		t.Fatalf("miss counter did not advance (delta %d)", d)
	}
	if d := after["loas_eval_memo_hits_total"] - before["loas_eval_memo_hits_total"]; d < 1 {
		t.Fatalf("hit counter did not advance (delta %d)", d)
	}
}
