package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// stubBackend counts invocations and returns canned bodies, so the
// cache/dedup/queue behaviour can be pinned down without paying for
// real synthesis.
type stubBackend struct {
	calls   atomic.Int64
	delay   time.Duration
	started chan struct{} // closed-once signal that a call began (optional)
	release chan struct{} // if non-nil, calls block until it closes
	once    sync.Once
}

func (b *stubBackend) do(kind string) ([]byte, error) {
	n := b.calls.Add(1)
	if b.started != nil {
		b.once.Do(func() { close(b.started) })
	}
	if b.release != nil {
		<-b.release
	}
	time.Sleep(b.delay)
	return []byte(fmt.Sprintf("{\"kind\":%q,\"call\":%d}\n", kind, n)), nil
}

// stubIterations is the canned convergence trace every stub synthesis
// reports — three layout calls shrinking to a fixpoint, like the paper.
var stubIterations = []obs.Iteration{
	{Call: 1, DeltaF: -1, OutCapF: 100e-15},
	{Call: 2, DeltaF: 10e-15, OutCapF: 110e-15},
	{Call: 3, DeltaF: 0.5e-15, OutCapF: 110.5e-15},
}

func (b *stubBackend) Synthesize(_ context.Context, _ sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	body, err := b.do(fmt.Sprintf("synthesize-%d", req.Case))
	return body, stubIterations, err
}
func (b *stubBackend) Table1(context.Context, sizing.OTASpec) ([]byte, error) {
	return b.do("table1")
}
func (b *stubBackend) MC(_ context.Context, _ sizing.OTASpec, req *MCRequest) ([]byte, error) {
	return b.do(fmt.Sprintf("mc-%d", req.N))
}
func (b *stubBackend) LayoutSVG(context.Context, sizing.OTASpec) ([]byte, error) {
	return b.do("layout")
}

func newStubServer(t *testing.T, cfg Config, b Backend) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Backend = b
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestDedupConcurrentIdenticalRequests is the singleflight contract: N
// concurrent identical requests cost exactly one backend synthesis.
func TestDedupConcurrentIdenticalRequests(t *testing.T) {
	stub := &stubBackend{started: make(chan struct{}), release: make(chan struct{})}
	s, ts := newStubServer(t, Config{}, stub)

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.URL+"/v1/synthesize", `{"case":3}`)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, data)
			}
			bodies[i] = data
		}(i)
	}
	// Hold the leader inside the backend until every other request has
	// joined its flight, so all n provably overlapped.
	<-stub.started
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.Joined() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d joined the flight", s.flight.Joined(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(stub.release)
	wg.Wait()

	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d identical concurrent requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs: %s vs %s", i, bodies[i], bodies[0])
		}
	}
	st := s.Stats()
	if st.BackendRuns != 1 {
		t.Fatalf("stats backend runs = %d, want 1", st.BackendRuns)
	}
	if st.DedupJoined != n-1 || st.Cache.Hits != 0 {
		t.Fatalf("dedup %d (want %d), hits %d (want 0)", st.DedupJoined, n-1, st.Cache.Hits)
	}
}

func TestCacheHitReplaysBytes(t *testing.T) {
	stub := &stubBackend{}
	s, ts := newStubServer(t, Config{}, stub)

	_, cold := post(t, ts.URL+"/v1/mc", `{"n":4,"seed":9}`)
	resp, warm := post(t, ts.URL+"/v1/mc", `{"n":4,"seed":9}`)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache replay differs: %q vs %q", cold, warm)
	}
	if h := resp.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("X-Loas-Cache = %q, want hit", h)
	}
	if stub.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1", stub.calls.Load())
	}
	// A different seed is a different content address.
	post(t, ts.URL+"/v1/mc", `{"n":4,"seed":10}`)
	if stub.calls.Load() != 2 {
		t.Fatalf("distinct request should miss, calls = %d", stub.calls.Load())
	}
	if st := s.Stats(); st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
}

// TestWorkersExcludedFromKey: worker count tunes execution, not the
// result (the engine is worker-invariant), so it must share the cache
// slot.
func TestWorkersExcludedFromKey(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/mc", `{"n":4,"seed":9,"workers":1}`)
	resp, _ := post(t, ts.URL+"/v1/mc", `{"n":4,"seed":9,"workers":7}`)
	if h := resp.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("worker count changed the cache key (X-Loas-Cache = %q)", h)
	}
	if stub.calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", stub.calls.Load())
	}
}

func TestQueueFullShedsLoad(t *testing.T) {
	stub := &stubBackend{started: make(chan struct{}), release: make(chan struct{})}
	_, ts := newStubServer(t, Config{Workers: 1, QueueDepth: -1}, stub)

	// Occupy the only worker.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, _ := post(t, ts.URL+"/v1/synthesize", `{"case":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request status %d", resp.StatusCode)
		}
	}()
	<-stub.started

	// A different key cannot queue: 503.
	resp, data := post(t, ts.URL+"/v1/synthesize", `{"case":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, data)
	}
	close(stub.release)
	<-firstDone
}

func TestBadRequests(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	for _, tc := range []struct{ path, body string }{
		{"/v1/synthesize", `{"case":9}`},
		{"/v1/synthesize", `{"unknown_field":1}`},
		{"/v1/mc", `{"n":-4}`},
		{"/v1/table1", `{"spec":{"vdd":-1}}`},
		{"/v1/synthesize", `not json`},
		{"/v1/synthesize", `{"topology":"no-such-ota"}`},
		{"/v1/mc", `{"topology":"no-such-ota"}`},
	} {
		resp, data := post(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d (%s), want 400", tc.path, tc.body, resp.StatusCode, data)
		}
	}
	if stub.calls.Load() != 0 {
		t.Fatalf("bad requests reached the backend %d times", stub.calls.Load())
	}
}

func TestStatsAndHealthz(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/synthesize", `{}`)
	post(t, ts.URL+"/v1/synthesize", `{}`)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Requests != 2 || st.BackendRuns != 1 || st.Cache.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Queue.Workers <= 0 {
		t.Fatalf("queue stats missing: %+v", st.Queue)
	}
}

// TestTraceEndpoint: a synthesis stores its convergence trace under its
// content-addressed key (echoed in X-Loas-Key), and /v1/trace/{key}
// replays it — including after the result itself becomes a cache hit.
func TestTraceEndpoint(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	resp, _ := post(t, ts.URL+"/v1/synthesize", `{"case":2}`)
	key := resp.Header.Get("X-Loas-Key")
	if key == "" {
		t.Fatal("response missing X-Loas-Key")
	}

	fetch := func() TraceReport {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/trace/" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("trace status %d", r.StatusCode)
		}
		var rep TraceReport
		if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := fetch()
	if rep.Key != key || len(rep.Iterations) != len(stubIterations) {
		t.Fatalf("trace report = %+v", rep)
	}
	if !rep.Converged {
		t.Fatal("stub trace ends below tolerance, should report converged")
	}
	if rep.Iterations[2].DeltaF != stubIterations[2].DeltaF {
		t.Fatalf("iteration replay corrupted: %+v", rep.Iterations[2])
	}

	// A cache hit replays bytes without re-running the backend; the
	// trace must still be there.
	resp2, _ := post(t, ts.URL+"/v1/synthesize", `{"case":2}`)
	if resp2.Header.Get("X-Loas-Cache") != "hit" {
		t.Fatal("second request should hit")
	}
	if resp2.Header.Get("X-Loas-Key") != key {
		t.Fatal("key must be stable across hit and miss")
	}
	fetch()
	if stub.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1", stub.calls.Load())
	}

	// Unknown keys are 404.
	r, err := http.Get(ts.URL + "/v1/trace/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key status %d, want 404", r.StatusCode)
	}
}

func TestTraceStoreBoundedFIFO(t *testing.T) {
	ts := newTraceStore(2)
	it := []obs.Iteration{{Call: 1}}
	ts.put("a", it)
	ts.put("b", it)
	ts.put("a", it) // refresh must not double-count a
	ts.put("c", it) // evicts a (oldest)
	if _, ok := ts.get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := ts.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if ts.len() != 2 {
		t.Fatalf("len = %d, want 2", ts.len())
	}
	ts.put("d", nil) // empty traces are not stored
	if _, ok := ts.get("d"); ok {
		t.Fatal("empty trace should be ignored")
	}
}

// TestMetricsEndpoint: /metrics exposes the latency histogram, the
// cache/queue gauges and the process-wide domain counters in Prometheus
// text format.
func TestMetricsEndpoint(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/synthesize", `{}`)
	post(t, ts.URL+"/v1/synthesize", `{}`) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE loas_synth_latency_seconds histogram",
		`loas_synth_latency_seconds_bucket{le="+Inf"} 2`,
		"loas_synth_latency_seconds_count 2",
		"loas_cache_hits 1",
		"loas_cache_misses 1",
		"loas_backend_runs 1",
		"# TYPE loas_queue_depth gauge",
		"loas_queue_depth 0",
		"loas_traces_stored 1",
		// Domain counters from obs.Default (values vary across the test
		// binary's lifetime; presence is the contract here).
		"loas_sizing_passes_total",
		"loas_layout_plans_total",
		"loas_mc_samples_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestPprofGating: the profiler endpoints exist only when asked for.
func TestPprofGating(t *testing.T) {
	stub := &stubBackend{}
	_, off := newStubServer(t, Config{}, stub)
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof should be absent by default, got status %d", resp.StatusCode)
	}

	_, on := newStubServer(t, Config{EnablePprof: true}, stub)
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled but status %d", resp.StatusCode)
	}
}

// TestShutdownWithRequestsInFlight drives traffic while the pool is
// closed under it; with `go test -race` this doubles as the data-race
// gate on the shutdown path. Accepted requests complete, later ones
// are shed with 503.
func TestShutdownWithRequestsInFlight(t *testing.T) {
	stub := &stubBackend{delay: 20 * time.Millisecond}
	s := New(Config{Backend: stub, Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.URL+"/v1/mc", fmt.Sprintf(`{"n":%d}`, i+1))
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("in-flight shutdown: status %d (%s)", resp.StatusCode, data)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	s.Close() // drains accepted jobs, rejects the rest
	wg.Wait()

	st := s.Stats()
	if st.Queue.Depth != 0 {
		t.Fatalf("queue not drained: %+v", st.Queue)
	}
}

// TestTopologiesEndpoint: GET /v1/topologies lists every registered
// plan plus the default, in sorted order.
func TestTopologiesEndpoint(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	resp, err := http.Get(ts.URL + "/v1/topologies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rep TopologiesReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Default != sizing.DefaultTopology {
		t.Fatalf("default %q, want %q", rep.Default, sizing.DefaultTopology)
	}
	want := sizing.Topologies()
	if len(rep.Topologies) != len(want) {
		t.Fatalf("topologies %v, want %v", rep.Topologies, want)
	}
	for i := range want {
		if rep.Topologies[i] != want[i] {
			t.Fatalf("topologies %v, want %v", rep.Topologies, want)
		}
	}
	if stub.calls.Load() != 0 {
		t.Fatal("listing topologies must not reach the backend")
	}
}

// TestUnknownTopologyLists400: the 400 body for an unknown topology
// names every registered plan, so a client can self-correct.
func TestUnknownTopologyLists400(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	for _, path := range []string{"/v1/synthesize", "/v1/mc"} {
		resp, data := post(t, ts.URL+path, `{"topology":"no-such-ota"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", path, resp.StatusCode, data)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatalf("%s: non-JSON error body %q", path, data)
		}
		for _, name := range sizing.Topologies() {
			if !strings.Contains(body.Error, name) {
				t.Fatalf("%s: error %q does not list topology %q", path, body.Error, name)
			}
		}
	}
	if stub.calls.Load() != 0 {
		t.Fatalf("unknown topology reached the backend %d times", stub.calls.Load())
	}
}

// TestTopologyKeyCanonicalization is the deterministic complement of
// FuzzCanonicalKey: absent == explicit default (no cold-cache
// regression for pre-topology clients), and every registered topology
// keys distinctly on both synthesize and mc requests.
func TestTopologyKeyCanonicalization(t *testing.T) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	absent := SynthesizeRequest{}
	if err := absent.normalize(); err != nil {
		t.Fatal(err)
	}
	explicit := SynthesizeRequest{Topology: sizing.DefaultTopology}
	if err := explicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if absent.cacheKey(tech, spec) != explicit.cacheKey(tech, spec) {
		t.Fatal("absent topology must key identically to the explicit default")
	}

	seen := map[string]string{}
	for _, name := range sizing.Topologies() {
		sr := SynthesizeRequest{Topology: name}
		if err := sr.normalize(); err != nil {
			t.Fatal(err)
		}
		k := sr.cacheKey(tech, spec)
		if prev, dup := seen[k]; dup {
			t.Fatalf("topologies %q and %q collide on synthesize key", prev, name)
		}
		seen[k] = name

		mr := MCRequest{Topology: name}
		if err := mr.normalize(); err != nil {
			t.Fatal(err)
		}
		mk := mr.cacheKey(tech, spec)
		if prev, dup := seen[mk]; dup {
			t.Fatalf("mc key for %q collides with %q", name, prev)
		}
		seen[mk] = "mc/" + name
	}
}

// TestTopologyDefaultSpecSubstitution: naming a non-default topology
// without a spec must hand the backend that topology's own default
// specification, not the paper's 65 MHz folded-cascode target — unless
// the operator pinned a server-wide spec.
func TestTopologyDefaultSpecSubstitution(t *testing.T) {
	var got atomic.Value
	b := &specRecordingBackend{seen: &got}
	_, ts := newStubServer(t, Config{}, b)
	post(t, ts.URL+"/v1/synthesize", `{"topology":"two-stage"}`)
	plan, err := sizing.Lookup("two-stage")
	if err != nil {
		t.Fatal(err)
	}
	if spec := got.Load().(sizing.OTASpec); spec != plan.DefaultSpec() {
		t.Fatalf("backend saw spec %+v, want two-stage default %+v", spec, plan.DefaultSpec())
	}

	// An explicit server-wide spec wins over the topology default.
	pinned := sizing.Default65MHz()
	_, ts2 := newStubServer(t, Config{Spec: &pinned}, b)
	post(t, ts2.URL+"/v1/synthesize", `{"topology":"two-stage"}`)
	if spec := got.Load().(sizing.OTASpec); spec != pinned {
		t.Fatalf("backend saw spec %+v, want pinned server spec %+v", spec, pinned)
	}
}

// specRecordingBackend captures the spec the server resolved.
type specRecordingBackend struct {
	stubBackend
	seen *atomic.Value
}

func (b *specRecordingBackend) Synthesize(ctx context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	b.seen.Store(spec)
	return b.stubBackend.Synthesize(ctx, spec, req)
}
