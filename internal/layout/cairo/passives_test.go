package cairo

import (
	"math"
	"testing"

	"loas/internal/techno"
)

func TestCapModuleRealizesValue(t *testing.T) {
	tech := techno.Default060()
	for _, target := range []float64{0.5e-12, 1.25e-12, 4e-12} {
		c := &CapModule{Inst: "c", C: target, TopNet: "a", BottomNet: "b"}
		for _, choice := range c.Choices() {
			got, err := c.RealizedCap(tech, choice)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got-target) / target; rel > 0.02 {
				t.Fatalf("C=%g choice %d realized %g (%.1f%% off)",
					target, choice, got, rel*100)
			}
		}
	}
}

func TestCapModuleAspects(t *testing.T) {
	tech := techno.Default060()
	c := &CapModule{Inst: "c", C: 2e-12, TopNet: "a", BottomNet: "b"}
	b0, err := c.Build(tech, 0) // square
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Build(tech, 2) // 4:1 wide
	if err != nil {
		t.Fatal(err)
	}
	bb0, bb2 := b0.Cell.BBox(), b2.Cell.BBox()
	if bb2.W() <= bb0.W() || bb2.H() >= bb0.H() {
		t.Fatalf("aspect choice had no effect: %v vs %v", bb0, bb2)
	}
	// Ports on both nets.
	if len(b0.Cell.PortsOnNet("a")) != 1 || len(b0.Cell.PortsOnNet("b")) != 1 {
		t.Fatal("cap ports missing")
	}
	// Bottom-plate parasitic reported on the bottom net only.
	if b0.RailCap["b"] <= 0 || b0.RailCap["a"] != 0 {
		t.Fatalf("bottom-plate parasitic wrong: %v", b0.RailCap)
	}
}

func TestCapModuleValidation(t *testing.T) {
	tech := techno.Default060()
	if _, err := (&CapModule{Inst: "c", C: 0}).Build(tech, 0); err == nil {
		t.Fatal("zero cap accepted")
	}
	noPoly2 := techno.Default060()
	noPoly2.Wire.CPolyPoly = 0
	if _, err := (&CapModule{Inst: "c", C: 1e-12}).Build(noPoly2, 0); err == nil {
		t.Fatal("technology without poly2 accepted")
	}
}

func TestResistorModuleRealizesValue(t *testing.T) {
	tech := techno.Default060()
	for _, target := range []float64{100, 313, 2500} {
		m := &ResistorModule{Inst: "r", R: target, ANet: "a", BNet: "b"}
		got, err := m.RealizedRes(tech)
		if err != nil {
			t.Fatal(err)
		}
		// Snapping plus the contact-pad minimum length bound the error.
		if rel := math.Abs(got-target) / target; rel > 0.35 {
			t.Fatalf("R=%g realized %g (%.0f%% off)", target, got, rel*100)
		}
	}
	if _, err := (&ResistorModule{Inst: "r", R: 0}).Build(tech, 0); err == nil {
		t.Fatal("zero resistance accepted")
	}
}

func TestPassivesOnGrid(t *testing.T) {
	tech := techno.Default060()
	c := &CapModule{Inst: "c", C: 1.3e-12, TopNet: "a", BottomNet: "b"}
	bc, err := c.Build(tech, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bc.Cell.CheckGrid(tech.Rules.Grid); err != nil {
		t.Fatal(err)
	}
	r := &ResistorModule{Inst: "r", R: 450, ANet: "a", BNet: "b"}
	br, err := r.Build(tech, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Cell.CheckGrid(tech.Rules.Grid); err != nil {
		t.Fatal(err)
	}
}
