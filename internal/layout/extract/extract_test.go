package extract

import (
	"strings"
	"testing"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/route"
	"loas/internal/techno"
)

func sampleCircuit(tech *techno.Tech) *circuit.Circuit {
	c := circuit.New("t")
	c.Add(
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		&circuit.MOSFET{Name: "M1", D: "out", G: "in", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: 20e-6, L: 1e-6}},
	)
	return c
}

func sampleParasitics() *Parasitics {
	p := New()
	p.DeviceGeom["M1"] = device.DiffGeom{AD: 1e-11, PD: 1e-5, AS: 2e-11, PS: 2e-5}
	p.Folds["M1"] = device.FoldPlan{Folds: 4, FingerW: 5.05e-6}
	p.NetCap["out"] = 10e-15
	p.NetCap["in"] = 5e-15
	p.NetCap["vdd"] = 80e-15
	p.Coupling[route.OrderedPair("out", "in")] = 1e-15
	p.Coupling[route.OrderedPair("out", "vdd")] = 2e-15
	p.WellCap["out"] = 3e-15
	return p
}

func TestApplyJunctionModels(t *testing.T) {
	tech := techno.Default060()
	par := sampleParasitics()

	cNone := sampleCircuit(tech)
	par.Apply(cNone, ApplyOptions{Junction: JunctionNone}, nil)
	if g := cNone.FindMOS("M1").Dev.Geom; g.AD != 0 {
		t.Fatalf("JunctionNone left AD = %g", g.AD)
	}

	cOne := sampleCircuit(tech)
	par.Apply(cOne, ApplyOptions{Junction: JunctionOneFold},
		func(_ string, w float64) device.DiffGeom { return device.OneFoldGeom(tech, w) })
	if g := cOne.FindMOS("M1").Dev.Geom; g.AD != 20e-6*tech.DiffExtContacted {
		t.Fatalf("JunctionOneFold AD = %g", g.AD)
	}

	cEx := sampleCircuit(tech)
	par.Apply(cEx, ApplyOptions{Junction: JunctionExact}, nil)
	m := cEx.FindMOS("M1")
	if m.Dev.Geom.AD != 1e-11 {
		t.Fatalf("JunctionExact AD = %g", m.Dev.Geom.AD)
	}
	if m.Dev.W != 4*5.05e-6 {
		t.Fatalf("realized width not applied: %g", m.Dev.W)
	}
}

func TestApplyRoutingCaps(t *testing.T) {
	tech := techno.Default060()
	par := sampleParasitics()
	c := sampleCircuit(tech)
	par.Apply(c, ApplyOptions{Junction: JunctionExact, Routing: true}, nil, "vdd")

	// out gets wiring + well lumped; vdd skipped (AC ground).
	if got := c.NodeCap("out"); got < 13e-15-1e-20 {
		t.Fatalf("out lumped cap = %g, want ≥ 13 fF (wiring+well, + coupling)", got)
	}
	found := false
	for _, e := range c.Elements {
		if cap, ok := e.(*circuit.Capacitor); ok && strings.HasPrefix(cap.Name, "par_vdd") {
			found = true
		}
	}
	if found {
		t.Fatal("vdd should be skipped as AC ground")
	}
	// Coupling out↔vdd becomes out↔gnd.
	var cpl *circuit.Capacitor
	for _, e := range c.Elements {
		if cap, ok := e.(*circuit.Capacitor); ok && strings.HasPrefix(cap.Name, "cc_out_vdd") {
			cpl = cap
		}
	}
	if cpl == nil || cpl.B != circuit.Ground && cpl.A != circuit.Ground {
		t.Fatalf("out↔vdd coupling not grounded: %+v", cpl)
	}
}

func TestApplySkipsLayoutOnlyNets(t *testing.T) {
	tech := techno.Default060()
	par := sampleParasitics()
	par.NetCap["dummies"] = 1e-15
	c := sampleCircuit(tech)
	before := len(c.Elements)
	par.Apply(c, ApplyOptions{Junction: JunctionNone, Routing: true}, nil, "vdd")
	for _, e := range c.Elements[before:] {
		if strings.Contains(e.ElemName(), "dummies") {
			t.Fatal("layout-only net leaked into the netlist")
		}
	}
}

func TestMaxDelta(t *testing.T) {
	a := sampleParasitics()
	b := sampleParasitics()
	if d := MaxDelta(a, b); d != 0 {
		t.Fatalf("identical reports differ by %g", d)
	}
	b.NetCap["out"] += 2e-15
	if d := MaxDelta(a, b); d < 1.9e-15 || d > 2.1e-15 {
		t.Fatalf("net delta = %g, want 2 fF", d)
	}
	b = sampleParasitics()
	b.DeviceGeom["M1"] = device.DiffGeom{AD: 2e-11, PD: 1e-5, AS: 2e-11, PS: 2e-5}
	if d := MaxDelta(a, b); d <= 0 {
		t.Fatal("junction delta invisible")
	}
	// Symmetric.
	if MaxDelta(a, b) != MaxDelta(b, a) {
		t.Fatal("MaxDelta not symmetric")
	}
}

func TestTotalAndCouplingQueries(t *testing.T) {
	p := sampleParasitics()
	if got := p.TotalNetCap("out"); got != 13e-15 {
		t.Fatalf("TotalNetCap = %g", got)
	}
	if got := p.CouplingTo("out"); got < 3e-15-1e-24 || got > 3e-15+1e-24 {
		t.Fatalf("CouplingTo = %g", got)
	}
}

func TestSummaryRenders(t *testing.T) {
	p := sampleParasitics()
	p.WidthUM, p.HeightUM, p.AreaUM2, p.LayoutCalls = 100, 50, 5000, 3
	s := p.Summary()
	for _, want := range []string{"100.0 x 50.0", "(3 layout call", "out", "coupling in <-> out"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestJunctionModelString(t *testing.T) {
	if JunctionNone.String() != "none" || JunctionOneFold.String() != "one-fold" ||
		JunctionExact.String() != "exact" {
		t.Fatal("junction model names wrong")
	}
}
