package sim

import (
	"fmt"
	"math"

	"loas/internal/circuit"
	"loas/internal/linalg"
)

// TranResult is a fixed-step transient waveform set.
type TranResult struct {
	T []float64
	// V[k] holds the node voltages at T[k], indexed by circuit node index.
	V [][]float64
}

// Waveform extracts one node's waveform.
func (r *TranResult) Waveform(ckt *circuit.Circuit, node string) []float64 {
	i, ok := ckt.NodeIndex(node)
	if !ok {
		return nil
	}
	out := make([]float64, len(r.T))
	for k := range r.T {
		out[k] = r.V[k][i]
	}
	return out
}

// MaxSlope returns the maximum |dv/dt| of a node waveform (V/s) and the
// time at which it occurs — the slew-rate measurement primitive.
func (r *TranResult) MaxSlope(ckt *circuit.Circuit, node string) (slope, at float64) {
	w := r.Waveform(ckt, node)
	for k := 1; k < len(w); k++ {
		dt := r.T[k] - r.T[k-1]
		if dt <= 0 {
			continue
		}
		s := math.Abs(w[k]-w[k-1]) / dt
		if s > slope {
			slope, at = s, r.T[k]
		}
	}
	return slope, at
}

// SettleValue returns the final value of a node waveform.
func (r *TranResult) SettleValue(ckt *circuit.Circuit, node string) float64 {
	w := r.Waveform(ckt, node)
	if len(w) == 0 {
		return math.NaN()
	}
	return w[len(w)-1]
}

// capState tracks one companion-model capacitor across time steps.
type capState struct {
	a, b  int // unknown indices (−1 = ground)
	c     float64
	vPrev float64
	iPrev float64
}

// Tran runs a fixed-step trapezoidal transient from 0 to tstop. The
// initial condition is the static solution with time-dependent sources
// evaluated at t = 0. MOS capacitances are re-evaluated at the start of
// every step (piecewise-constant within a step), which is accurate enough
// for slewing and settling measurements while keeping the Newton loop
// linear in the capacitances.
func (e *Engine) Tran(tstop, h float64, opts OPOptions) (*TranResult, error) {
	if h <= 0 || tstop <= 0 {
		return nil, fmt.Errorf("sim: transient needs positive tstop and step, got %g, %g", tstop, h)
	}
	opts.defaults()

	// Static solution at t = 0 with gmin continuation.
	x := make([]float64, e.size)
	for name, v := range opts.NodeSet {
		if i, ok := e.Ckt.NodeIndex(name); ok && i > 0 {
			x[e.nodeUnknown(i)] = v
		}
	}
	for gmin := opts.GminStart; ; gmin /= 10 {
		if gmin < opts.GminEnd {
			gmin = opts.GminEnd
		}
		if _, err := e.newtonSolveAt(x, gmin, 1.0, 0, nil, &opts); err != nil {
			return nil, fmt.Errorf("sim: transient initial condition: %w", err)
		}
		if gmin == opts.GminEnd {
			break
		}
	}

	res := &TranResult{}
	record := func(t float64) {
		v := make([]float64, e.Ckt.NumNodes())
		for i := 1; i < e.Ckt.NumNodes(); i++ {
			v[i] = x[e.nodeUnknown(i)]
		}
		res.T = append(res.T, t)
		res.V = append(res.V, v)
	}
	record(0)

	// Companion capacitor states, refreshed per step for MOS caps.
	caps := e.collectCaps(x)

	nSteps := int(math.Ceil(tstop / h))
	for k := 1; k <= nSteps; k++ {
		t := float64(k) * h
		// Refresh MOS capacitance values at the previous solution while
		// keeping each state's accumulated charge history.
		e.refreshMOSCaps(caps, x)
		for i := range caps {
			caps[i].vPrev = capVolt(x, &caps[i])
		}

		extra := func(xc []float64, j *linalg.Real, f []float64) {
			for i := range caps {
				cs := &caps[i]
				geq := 2 * cs.c / h
				ieq := geq*cs.vPrev + cs.iPrev
				v := capVolt(xc, cs)
				icap := geq*v - ieq
				if cs.a >= 0 {
					f[cs.a] += icap
					j.Add(cs.a, cs.a, geq)
					if cs.b >= 0 {
						j.Add(cs.a, cs.b, -geq)
					}
				}
				if cs.b >= 0 {
					f[cs.b] -= icap
					j.Add(cs.b, cs.b, geq)
					if cs.a >= 0 {
						j.Add(cs.b, cs.a, -geq)
					}
				}
			}
		}
		if _, err := e.newtonSolveAt(x, opts.GminEnd, 1.0, t, extra, &opts); err != nil {
			return nil, fmt.Errorf("sim: transient step %d (t=%.4g s): %w", k, t, err)
		}
		// Commit capacitor states.
		for i := range caps {
			cs := &caps[i]
			geq := 2 * cs.c / h
			v := capVolt(x, cs)
			cs.iPrev = geq*v - (geq*cs.vPrev + cs.iPrev)
		}
		record(t)
	}
	return res, nil
}

func capVolt(x []float64, cs *capState) float64 {
	return voltsAt(x, cs.a) - voltsAt(x, cs.b)
}

// collectCaps builds the companion-capacitor list: fixed capacitors first,
// then five entries per MOSFET (CGS, CGD, CGB, CDB, CSB) whose values are
// refreshed every step.
func (e *Engine) collectCaps(x []float64) []capState {
	var out []capState
	for _, el := range e.Ckt.Elements {
		switch t := el.(type) {
		case *circuit.Capacitor:
			cs := capState{a: e.unknownOf(t.A), b: e.unknownOf(t.B), c: t.C}
			cs.vPrev = capVolt(x, &cs)
			out = append(out, cs)
		case *circuit.MOSFET:
			d, g, s, b := e.unknownOf(t.D), e.unknownOf(t.G), e.unknownOf(t.S), e.unknownOf(t.B)
			pairs := [5][2]int{{g, s}, {g, d}, {g, b}, {d, b}, {s, b}}
			for _, p := range pairs {
				cs := capState{a: p[0], b: p[1]}
				cs.vPrev = capVolt(x, &cs)
				out = append(out, cs)
			}
		}
	}
	e.refreshMOSCaps(out, x)
	return out
}

// refreshMOSCaps re-evaluates the five MOS capacitances at the solution x.
// The cap list layout must match collectCaps.
func (e *Engine) refreshMOSCaps(caps []capState, x []float64) {
	idx := 0
	for _, el := range e.Ckt.Elements {
		switch t := el.(type) {
		case *circuit.Capacitor:
			idx++
		case *circuit.MOSFET:
			vd := voltsAt(x, e.unknownOf(t.D))
			vg := voltsAt(x, e.unknownOf(t.G))
			vs := voltsAt(x, e.unknownOf(t.S))
			vb := voltsAt(x, e.unknownOf(t.B))
			op := t.Dev.Eval(vg, vd, vs, vb, e.Temp)
			cset := t.Dev.Caps(op, e.Temp)
			vals := [5]float64{cset.CGS, cset.CGD, cset.CGB, cset.CDB, cset.CSB}
			for _, v := range vals {
				caps[idx].c = v
				idx++
			}
		}
	}
}
