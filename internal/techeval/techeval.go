// Package techeval is the technology evaluation interface of the sizing
// tool ("a technology evaluation interface allows to easily characterize
// different technologies and helps to choose the most suitable
// technology"): it extracts designer-facing figures of merit from a model
// card — threshold, gm/ID curve, transit frequency, intrinsic gain — and
// renders side-by-side technology comparisons.
package techeval

import (
	"fmt"
	"math"
	"strings"

	"loas/internal/device"
	"loas/internal/techno"
)

// GmIDPoint is one point of the gm/ID design chart.
type GmIDPoint struct {
	VGS     float64 // V
	ID      float64 // A (for the reference geometry)
	GmID    float64 // 1/V
	GmRatio float64 // gm/gds at the same bias
}

// Characteristics summarizes one device type in one technology.
type Characteristics struct {
	Type techno.MOSType
	// VTcc is the constant-current threshold (VGS at ID = 100 nA·W/L).
	VTcc float64
	// GmIDMax is the weak-inversion plateau of gm/ID (≈ 1/(n·vt)).
	GmIDMax float64
	// FTStrong is the transit frequency gm/(2π(Cgs+Cgd)) at Veff = 0.2 V
	// for the reference geometry (L = feature size).
	FTStrong float64
	// A0PerUm is the intrinsic gain gm/gds at Veff = 0.2 V and L = 1 µm.
	A0PerUm float64
	// Curve is the gm/ID chart for the reference geometry.
	Curve []GmIDPoint
}

const refW = 10 * techno.Micron

// Characterize sweeps the reference device and extracts the card's
// figures of merit.
func Characterize(tech *techno.Tech, mt techno.MOSType) *Characteristics {
	c := &Characteristics{Type: mt}

	c.VTcc = ExtractVT(tech, mt, refW, tech.Feature)
	c.Curve = GmIDCurve(tech, mt, refW, tech.Feature, 41)
	for _, p := range c.Curve {
		if p.GmID > c.GmIDMax {
			c.GmIDMax = p.GmID
		}
	}
	c.FTStrong = FT(tech, mt, refW, tech.Feature, 0.2)
	c.A0PerUm = IntrinsicGain(tech, mt, refW, 1*techno.Micron, 0.2)
	return c
}

// ExtractVT returns the constant-current threshold: VGS at
// ID = 100 nA · W/L (the standard production test definition).
func ExtractVT(tech *techno.Tech, mt techno.MOSType, w, l float64) float64 {
	card := tech.Card(mt)
	m := device.MOS{Card: card, W: w, L: l}
	target := 100e-9 * w / l
	vgs, err := m.VGSForCurrent(target, tech.VDDNominal/2, 0, tech.Temp)
	if err != nil {
		return math.NaN()
	}
	return vgs
}

// GmIDCurve sweeps VGS from weak to strong inversion.
func GmIDCurve(tech *techno.Tech, mt techno.MOSType, w, l float64, n int) []GmIDPoint {
	card := tech.Card(mt)
	m := device.MOS{Card: card, W: w, L: l}
	sign := card.VTSign()
	vds := tech.VDDNominal / 2
	out := make([]GmIDPoint, 0, n)
	for i := 0; i < n; i++ {
		vgs := card.VT0 - 0.3 + float64(i)/float64(n-1)*1.3
		op := m.Eval(sign*vgs, sign*vds, 0, 0, tech.Temp)
		id := math.Abs(op.ID)
		if id < 1e-15 {
			continue
		}
		gr := math.Inf(1)
		if op.Gds > 0 {
			gr = op.Gm / op.Gds
		}
		out = append(out, GmIDPoint{VGS: vgs, ID: id, GmID: op.Gm / id, GmRatio: gr})
	}
	return out
}

// FT returns the transit frequency gm/(2π·(Cgs+Cgd)) at the given
// overdrive in saturation.
func FT(tech *techno.Tech, mt techno.MOSType, w, l, veff float64) float64 {
	card := tech.Card(mt)
	m := device.MOS{Card: card, W: w, L: l}
	sign := card.VTSign()
	vgs := card.VT0 + veff
	vds := veff + 0.3
	op := m.Eval(sign*vgs, sign*vds, 0, 0, tech.Temp)
	cs := m.Caps(op, tech.Temp)
	return op.Gm / (2 * math.Pi * (cs.CGS + cs.CGD))
}

// IntrinsicGain returns gm/gds at the given overdrive and length.
func IntrinsicGain(tech *techno.Tech, mt techno.MOSType, w, l, veff float64) float64 {
	card := tech.Card(mt)
	m := device.MOS{Card: card, W: w, L: l}
	sign := card.VTSign()
	vgs := card.VT0 + veff
	vds := tech.VDDNominal / 2
	op := m.Eval(sign*vgs, sign*vds, 0, 0, tech.Temp)
	if op.Gds <= 0 {
		return math.Inf(1)
	}
	return op.Gm / op.Gds
}

// Summary renders the characteristics for a report.
func (c *Characteristics) Summary() string {
	return fmt.Sprintf("%s: VTcc %.3f V, gm/ID max %.1f 1/V, fT(0.2 V) %.2f GHz, A0(1 µm) %.0f (%.1f dB)",
		c.Type, c.VTcc, c.GmIDMax, c.FTStrong/1e9, c.A0PerUm,
		20*math.Log10(c.A0PerUm))
}

// Compare renders a side-by-side comparison of two technologies — the
// "helps to choose the most suitable technology" use case.
func Compare(a, b *techno.Tech) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "technology comparison: %s vs %s\n", a.Name, b.Name)
	for _, mt := range []techno.MOSType{techno.NMOS, techno.PMOS} {
		ca := Characterize(a, mt)
		cb := Characterize(b, mt)
		fmt.Fprintf(&sb, "  %s\n", mt)
		fmt.Fprintf(&sb, "    VTcc      %8.3f V    %8.3f V\n", ca.VTcc, cb.VTcc)
		fmt.Fprintf(&sb, "    gm/ID max %8.1f /V   %8.1f /V\n", ca.GmIDMax, cb.GmIDMax)
		fmt.Fprintf(&sb, "    fT(0.2V)  %8.2f GHz  %8.2f GHz\n", ca.FTStrong/1e9, cb.FTStrong/1e9)
		fmt.Fprintf(&sb, "    A0(1um)   %8.0f      %8.0f\n", ca.A0PerUm, cb.A0PerUm)
	}
	return sb.String()
}
